#pragma once
// Multi-tenant serverless runtime: N applications (tenants), each with its
// own trace, SLO/controller, and batching buffer, replayed by a SHARDED
// ASYNC executor. Tenants are independent at the workload level — the
// shared resource is the controller's model evaluation: DeepBAT tenants
// split their decision into parse/encode/select phases (SplitController)
// so each shard can batch its tenants' per-tick sequence encodings into a
// single surrogate forward (paper §IV-F's encode-once split, amortized
// fleet-wide as in HarmonyBatch, arXiv:2405.05633).
//
// Execution model (DESIGN.md §10):
//   TickScheduler   — the global tick grid: tick k fires at k * interval,
//                     computed by multiplication so coinciding ticks are
//                     bitwise-equal across tenants, shards, and solo runs.
//   RuntimeShard    — one execution unit owning a deterministic subset of
//                     tenants (slot i -> shard i mod S), their simulators
//                     and engines (single-writer caches by construction),
//                     and its own batch-encoder view. Within a shard, tick
//                     groups are double-buffered: while group k's batched
//                     encode() runs on the pool, the shard pre-advances
//                     non-member tenants' arrival events to the next tick
//                     instant, hiding control latency behind simulation
//                     work.
//   Runtime         — partitions tenants, runs shards on a WorkerPool
//                     (common/parallel.hpp), and merges per-shard
//                     RuntimeStats at join.
//
// Determinism contract (tests/sim/test_runtime.cpp): a run with ANY shard
// count and with or without encode overlap is bit-identical per tenant to
// N independent run_platform() replays. run_platform() itself is a
// single-tenant, single-shard, non-overlapped wrapper over this loop.

#include <algorithm>
#include <cstddef>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "sim/platform.hpp"

namespace deepbat::sim {

class RuntimeShard;

/// Shared encoding service implemented over the surrogate (core layer).
/// Kept abstract here so sim/ stays free of the nn dependency: the currency
/// is plain float spans.
///
/// Concurrency: encode() may be called from several runtime shards at
/// once — on distinct per-shard instances or on one shared instance.
/// Implementations must therefore be stateless across calls apart from the
/// base-class counters (which are relaxed atomics); SurrogateBatchEncoder
/// satisfies this by running a const model forward under thread-local
/// no-grad and arena scopes.
class BatchEncoder {
 public:
  virtual ~BatchEncoder() = default;

  /// Window length l every submitted window must have.
  virtual std::size_t window_length() const = 0;
  /// Dimension d of one encoded row.
  virtual std::size_t encoding_dim() const = 0;

  /// Encode `count` windows (concatenated row-major: count * window_length
  /// floats) into `out` (count * encoding_dim floats) with a SINGLE model
  /// forward. Row k of `out` must be bit-identical to encoding window k
  /// alone — the kernels' per-row determinism contract makes the batch
  /// split invisible to results.
  virtual void encode(std::span<const float> windows, std::size_t count,
                      std::span<float> out) = 0;

  /// Number of encode() calls / total windows shipped (bench counters).
  std::size_t calls() const { return calls_.load(std::memory_order_relaxed); }
  std::size_t windows_encoded() const {
    return windows_.load(std::memory_order_relaxed);
  }

 protected:
  void count_call(std::size_t windows) {
    calls_.fetch_add(1, std::memory_order_relaxed);
    windows_.fetch_add(windows, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> calls_{0};
  std::atomic<std::size_t> windows_{0};
};

/// Shared grid-scoring service (core::SurrogateBatchScorer): scores k
/// tenants' encoded rows against the whole candidate grid in one fused
/// pass. Abstract for the same reason as BatchEncoder — sim/ trades in
/// plain float spans, so it never depends on nn/ or the core prediction
/// types.
///
/// Concurrency: score() may run on several shards at once (distinct or
/// shared instances); implementations must be stateless across calls apart
/// from the relaxed base-class counters.
class BatchScorer {
 public:
  virtual ~BatchScorer() = default;

  /// Dimension d of one encoded input row.
  virtual std::size_t encoding_dim() const = 0;
  /// Number of grid configurations scored per row.
  virtual std::size_t grid_size() const = 0;
  /// Floats emitted per (row, config) prediction.
  virtual std::size_t target_dim() const = 0;

  /// Score `count` encoded rows (concatenated, count * encoding_dim floats)
  /// into `out` (count * grid_size * target_dim floats, tenant-major). Row
  /// k's slice must be bit-identical to scoring row k alone — the fused
  /// pass must be invisible to results at any batch split.
  virtual void score(std::span<const float> e1_rows, std::size_t count,
                     std::span<float> out) = 0;

  /// Number of score() calls / total rows scored (bench counters).
  std::size_t calls() const { return calls_.load(std::memory_order_relaxed); }
  std::size_t rows_scored() const {
    return rows_.load(std::memory_order_relaxed);
  }

 protected:
  void count_call(std::size_t rows) {
    calls_.fetch_add(1, std::memory_order_relaxed);
    rows_.fetch_add(rows, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> calls_{0};
  std::atomic<std::size_t> rows_{0};
};

/// Controller whose decision splits into phases so the expensive shared
/// stage can be batched across tenants:
///   begin_tick()  — parse the window, probe the encoder cache;
///   (the shard batch-encodes the cache misses of every tenant in the tick)
///   finish_tick() — score the grid and select the configuration.
/// Implementations must also provide the plain decide() (Controller) for
/// single-tenant use; both paths must produce identical decisions.
class SplitController : public Controller {
 public:
  struct TickRequest {
    /// True when the runtime must supply an encoding to finish_tick();
    /// false when the controller already has one (window-cache hit).
    bool needs_encoding = false;
    /// The parsed+encoded window (length = BatchEncoder::window_length()),
    /// valid until finish_tick() returns. Empty when !needs_encoding.
    std::span<const float> window;
    /// True when the controller skipped its surrogate path entirely (e.g.
    /// DeepBAT's circuit breaker is open and the tick falls back to the
    /// last-known-good config). Such a tick is neither a window-cache hit
    /// nor a miss in RuntimeStats.
    bool bypassed = false;
    /// On a window-cache hit (!needs_encoding && !bypassed): the cached
    /// encoded row, so a runtime with a BatchScorer can fold this tenant
    /// into the tick group's fused scoring pass without re-encoding. Valid
    /// until finish_tick()/finish_tick_scored() returns. Controllers that
    /// do not support batched scoring may leave it empty.
    std::span<const float> cached_encoding;
  };

  virtual TickRequest begin_tick(const workload::Trace& history,
                                 double now) = 0;
  /// `encoding`: one encoded row (encoding_dim floats) when the matching
  /// begin_tick() asked for one; empty otherwise.
  virtual lambda::Config finish_tick(std::span<const float> encoding) = 0;

  /// True when the controller can accept externally computed grid scores
  /// via finish_tick_scored(). Controllers returning true must populate
  /// TickRequest::cached_encoding on window-cache hits.
  virtual bool supports_batched_scoring() const { return false; }
  /// finish_tick() variant fed by the runtime's shared BatchScorer:
  /// `raw_predictions` is this tenant's slice of the fused scoring output
  /// (grid_size * target_dim floats). Only called on non-bypassed ticks of
  /// controllers whose supports_batched_scoring() is true; the default
  /// ignores the scores and re-scores via finish_tick().
  virtual lambda::Config finish_tick_scored(
      std::span<const float> encoding,
      std::span<const float> /*raw_predictions*/) {
    return finish_tick(encoding);
  }
};

/// One application replayed by the runtime.
struct TenantSpec {
  std::string name;
  const workload::Trace* trace = nullptr;
  Controller* controller = nullptr;
  /// Lambda cost/latency model serving this tenant (tenants may differ).
  const lambda::LambdaModel* model = nullptr;
  /// Heterogeneous serving backend (DESIGN.md §13). When set it wins over
  /// `model` (which may then be null); at least one of the two must be
  /// non-null. The caller keeps the backend alive across run().
  const lambda::Backend* backend = nullptr;
  /// Fleet function-group id assigned by core::FleetOptimizer; -1 means
  /// ungrouped (solo tenant). Copied verbatim into PlatformRun::group_id.
  std::int64_t group_id = -1;
  lambda::Config initial_config;
  PlatformOptions options;  // per-tenant control interval + cold-start seed
};

/// Per-run counters, kept as a plain snapshot view for callers; every field
/// is also mirrored into the process metrics registry under sim.runtime.*
/// (counters tick_group / control_tick / batched_window / encode_call /
/// cache_hit / cache_miss, histograms batch_encode_seconds /
/// tick_group_seconds / tenant_phase_seconds — DESIGN.md §9; multi-shard
/// runs additionally record sim.runtime.shard<k>.* histograms).
///
/// In a sharded run each RuntimeShard accumulates its own instance
/// (single-writer) and the Runtime folds them with merge() at join, so the
/// caller always sees fleet totals.
struct RuntimeStats {
  std::size_t tick_groups = 0;      // tick instants processed (per shard)
  std::size_t control_ticks = 0;    // per-tenant control decisions
  std::size_t batched_windows = 0;  // windows routed through the shared
                                    // encoder (cache misses)
  std::size_t encode_calls = 0;     // batched forwards issued
  /// Split-controller window-cache accounting, derived from the tick
  /// requests the runtime itself sees (a split tick that needs no encoding
  /// IS a window-cache hit). This is the single source of truth for
  /// solo-vs-batched hit-rate comparisons — benches must not re-derive hit
  /// rates from controller internals.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Split ticks that skipped the surrogate path entirely (controller
  /// circuit breaker open); counted separately from hits and misses.
  std::size_t bypassed_ticks = 0;
  /// Total wall time inside the shared encoder's batched forwards.
  double encode_seconds = 0.0;
  /// Fused grid-scoring accounting (runs with a BatchScorer only):
  /// tenant rows scored through the shared fused pass, passes issued, and
  /// the wall time inside them.
  std::size_t scored_rows = 0;
  std::size_t score_calls = 0;
  double score_seconds = 0.0;
  /// Heterogeneous-fleet accounting (DESIGN.md §13): tenants replayed with
  /// a fleet group id (group_id >= 0) and billed invocations split by
  /// serving backend. Tenants without an explicit backend count as CPU —
  /// the legacy model path IS the CPU backend.
  std::size_t fleet_groups = 0;
  std::size_t cpu_invocations = 0;
  std::size_t gpu_invocations = 0;
  /// Work-stealing accounting (DESIGN.md §15): tick-group claims taken by
  /// an executor other than the shard's home executor (mirrored into the
  /// sim.runtime.steals counter), and the high-water mark of pending live
  /// tenant slots observed on any single shard (sim.runtime.queue_depth
  /// gauge). Both depend on thread timing, so — unlike every other field —
  /// they are NOT reproducible run over run; per-tenant results are.
  std::size_t steals = 0;
  std::size_t max_queue_depth = 0;

  double cache_hit_rate() const {
    const std::size_t probes = cache_hits + cache_misses;
    return probes > 0 ? static_cast<double>(cache_hits) /
                            static_cast<double>(probes)
                      : 0.0;
  }

  /// Fold another shard's stats into this one: every count and every
  /// seconds total SUMS, except max_queue_depth — a high-water mark, which
  /// merges as the MAX; derived rates (cache_hit_rate) recompute from the
  /// summed counts — they are never averaged across shards.
  void merge(const RuntimeStats& other) {
    tick_groups += other.tick_groups;
    control_ticks += other.control_ticks;
    batched_windows += other.batched_windows;
    encode_calls += other.encode_calls;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    bypassed_ticks += other.bypassed_ticks;
    encode_seconds += other.encode_seconds;
    scored_rows += other.scored_rows;
    score_calls += other.score_calls;
    score_seconds += other.score_seconds;
    fleet_groups += other.fleet_groups;
    cpu_invocations += other.cpu_invocations;
    gpu_invocations += other.gpu_invocations;
    steals += other.steals;
    max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  }
};

struct RuntimeOptions {
  /// Worker shards tenants are partitioned over (slot i -> shard i mod
  /// shards, clamped to the tenant count). 1 replays every tenant on the
  /// calling thread, exactly the pre-sharding loop.
  std::size_t shards = 1;
  /// Double-buffer tick groups: run each tick group's batched encode()
  /// forward on the worker pool while the owning shard pre-advances
  /// non-member tenants to the next tick instant. Only takes effect where
  /// it can help — a shard with at least two tenants and a batch encoder.
  /// Results are bit-identical either way.
  bool overlap_encode = true;
  /// Work-stealing execution (DESIGN.md §15): instead of pinning shard k to
  /// executor k for its whole replay, every executor scans for a claimable
  /// shard (home shard first) and executes ONE tick group per claim, so an
  /// executor whose own shards drained keeps driving the lagging ones. A
  /// shard's groups still run in strict serial order — the claim hands the
  /// shard state between executors with acquire/release ordering — so
  /// per-tenant results stay bit-identical to the static schedule at every
  /// shard count; only the steals / queue-depth stats are timing-dependent.
  /// No effect at 1 shard.
  bool work_stealing = true;
};

/// The sharded executor. With a batch encoder, all SplitController tenants
/// of one shard ticking at the same instant are encoded in one forward;
/// without one, every controller runs its plain decide() (still one loop
/// per shard).
class Runtime {
 public:
  // Both out-of-line: shards_ holds the forward-declared RuntimeShard.
  explicit Runtime(BatchEncoder* shared_encoder = nullptr,
                   RuntimeOptions options = {});
  ~Runtime();

  /// Per-shard encoder instances: when set (and non-null per call), each
  /// shard encodes through its own factory-made instance, keeping even the
  /// encoder's bench counters single-writer. Without a factory every shard
  /// shares `shared_encoder`, which is safe (see BatchEncoder) but merges
  /// all shards' calls()/windows_encoded() into one instance.
  using EncoderFactory = std::function<std::unique_ptr<BatchEncoder>()>;
  void set_encoder_factory(EncoderFactory factory) {
    encoder_factory_ = std::move(factory);
  }

  /// Shared fused grid scorer: when set, each shard scores all of a tick
  /// group's batched-scoring tenants (cache hits included) in one
  /// BatchScorer::score() pass and finishes them via finish_tick_scored().
  /// Requires a batch encoder (the split path). Null keeps the per-tenant
  /// scoring inside finish_tick(), exactly the pre-scorer loop.
  void set_scorer(BatchScorer* scorer) { scorer_ = scorer; }
  /// Per-shard scorer instances, mirroring set_encoder_factory: when set,
  /// each shard scores through its own factory-made instance so even the
  /// scorer's bench counters stay single-writer.
  using ScorerFactory = std::function<std::unique_ptr<BatchScorer>()>;
  void set_scorer_factory(ScorerFactory factory) {
    scorer_factory_ = std::move(factory);
  }

  /// Size hint for bulk registration: reserves the tenant table once so a
  /// million add_tenant() calls don't pay geometric regrowth copies.
  void reserve(std::size_t tenants) { tenants_.reserve(tenants); }

  void add_tenant(TenantSpec spec);
  std::size_t tenant_count() const { return tenants_.size(); }

  const RuntimeOptions& options() const { return options_; }

  /// Replay every tenant to the end of its trace (resuming from wherever
  /// run_until() or restore_checkpoint() left the replay). Returns one
  /// PlatformRun per tenant, in add_tenant() order, and is terminal: the
  /// runs are moved out, so call it once. Each tenant's run is bit-identical
  /// to a solo run_platform() with the same spec, for every shard count —
  /// and for every save/restore split (DESIGN.md §16).
  std::vector<PlatformRun> run();

  /// Advance the replay through every tick group with instant <= `limit`
  /// seconds, sequentially on the calling thread, and stop at that
  /// tick-group boundary — no tenant is finalized. Determinism makes the
  /// schedule irrelevant to results, so a partial sequential advance
  /// followed by run() is bit-identical to a single run() at any shard
  /// count. This is the checkpoint hook: call save_checkpoint() between
  /// run_until() and run().
  void run_until(double limit);

  /// Snapshot the complete replay state — scheduler progress, simulator
  /// traces-in-flight, fault/cold RNG positions, accumulated decisions, and
  /// each tenant's controller/observer state — into a versioned, checksummed
  /// file (sim/checkpoint.hpp; written atomically). Every tenant's
  /// controller (and observer, when set) must implement sim::Checkpointable;
  /// throws deepbat::Error otherwise. Call at a tick-group boundary
  /// (after run_until()).
  void save_checkpoint(const std::string& path);

  /// Resume a replay from a snapshot: must be called on a FRESH runtime
  /// (before any run_until()/run()) populated with the same tenants in the
  /// same order — names and fault streams are verified. The shard count may
  /// differ from the saving runtime's: the checkpoint is laid out in global
  /// tenant order, never by shard. Throws deepbat::Error on any mismatch or
  /// on a corrupt/version-skewed snapshot file, leaving no partial state
  /// behind UB — a failed restore leaves the runtime unusable but defined.
  void restore_checkpoint(const std::string& path);

  /// Fleet totals. After run(): the completed replay's stats, including
  /// everything accumulated before a restore (stitched via merge()).
  const RuntimeStats& stats() const { return stats_; }

 private:
  /// Build the execution state once: partition tenants over shards, build
  /// the worker pool and per-shard encoder/scorer instances. Idempotent.
  void start();

  BatchEncoder* encoder_;
  BatchScorer* scorer_ = nullptr;
  RuntimeOptions options_;
  EncoderFactory encoder_factory_;
  ScorerFactory scorer_factory_;
  std::vector<TenantSpec> tenants_;
  RuntimeStats stats_;
  // Config-validation memo (add_tenant): bulk registrations overwhelmingly
  // reuse one (backend, initial config) pair, so remember the last pair
  // that validated clean and skip the re-validation for repeats.
  const lambda::Backend* validated_backend_ = nullptr;
  std::optional<lambda::Config> validated_config_;

  // Execution state, persistent across run_until()/run() so a replay can be
  // advanced stepwise, checkpointed, and resumed. Built by start().
  bool started_ = false;
  std::size_t shard_count_ = 1;
  std::optional<WorkerPool> pool_;
  std::vector<std::unique_ptr<BatchEncoder>> owned_encoders_;
  std::vector<std::unique_ptr<BatchScorer>> owned_scorers_;
  std::vector<std::unique_ptr<RuntimeShard>> shards_;
  std::vector<PlatformRun> runs_;
  /// Stats carried over from before a restore (zero for fresh runs); the
  /// final stats_ merges this with the live shards' post-restore stats.
  RuntimeStats base_stats_;
};

}  // namespace deepbat::sim
