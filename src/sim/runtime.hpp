#pragma once
// Multi-tenant serverless runtime: N applications (tenants), each with its
// own trace, SLO/controller, and batching buffer, replayed in ONE merged
// event loop. Tenants are independent at the workload level — the shared
// resource is the controller's model evaluation: DeepBAT tenants split
// their decision into parse/encode/select phases (SplitController) so the
// runtime can batch every tenant's per-tick sequence encoding into a single
// surrogate forward (paper §IV-F's encode-once split, amortized fleet-wide
// as in HarmonyBatch, arXiv:2405.05633).
//
// Control ticks live on a global grid — tick k fires at k * interval — so
// tenants sharing a control interval tick at bitwise-identical instants
// and their encodings fold into one forward.
//
// run_platform() (platform.hpp) is now a thin single-tenant wrapper over
// this loop, so solo replays and fleet replays share one code path (and
// the same tick grid); a multi-tenant run is bit-identical per tenant to
// N independent solo runs.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/platform.hpp"

namespace deepbat::sim {

/// Shared encoding service implemented over the surrogate (core layer).
/// Kept abstract here so sim/ stays free of the nn dependency: the currency
/// is plain float spans.
class BatchEncoder {
 public:
  virtual ~BatchEncoder() = default;

  /// Window length l every submitted window must have.
  virtual std::size_t window_length() const = 0;
  /// Dimension d of one encoded row.
  virtual std::size_t encoding_dim() const = 0;

  /// Encode `count` windows (concatenated row-major: count * window_length
  /// floats) into `out` (count * encoding_dim floats) with a SINGLE model
  /// forward. Row k of `out` must be bit-identical to encoding window k
  /// alone — the kernels' per-row determinism contract makes the batch
  /// split invisible to results.
  virtual void encode(std::span<const float> windows, std::size_t count,
                      std::span<float> out) = 0;

  /// Number of encode() calls / total windows shipped (bench counters).
  std::size_t calls() const { return calls_; }
  std::size_t windows_encoded() const { return windows_; }

 protected:
  void count_call(std::size_t windows) {
    ++calls_;
    windows_ += windows;
  }

 private:
  std::size_t calls_ = 0;
  std::size_t windows_ = 0;
};

/// Controller whose decision splits into phases so the expensive shared
/// stage can be batched across tenants:
///   begin_tick()  — parse the window, probe the encoder cache;
///   (runtime batch-encodes the cache misses of every tenant in the tick)
///   finish_tick() — score the grid and select the configuration.
/// Implementations must also provide the plain decide() (Controller) for
/// single-tenant use; both paths must produce identical decisions.
class SplitController : public Controller {
 public:
  struct TickRequest {
    /// True when the runtime must supply an encoding to finish_tick();
    /// false when the controller already has one (window-cache hit).
    bool needs_encoding = false;
    /// The parsed+encoded window (length = BatchEncoder::window_length()),
    /// valid until finish_tick() returns. Empty when !needs_encoding.
    std::span<const float> window;
  };

  virtual TickRequest begin_tick(const workload::Trace& history,
                                 double now) = 0;
  /// `encoding`: one encoded row (encoding_dim floats) when the matching
  /// begin_tick() asked for one; empty otherwise.
  virtual lambda::Config finish_tick(std::span<const float> encoding) = 0;
};

/// One application replayed by the runtime.
struct TenantSpec {
  std::string name;
  const workload::Trace* trace = nullptr;
  Controller* controller = nullptr;
  /// Lambda cost/latency model serving this tenant (tenants may differ).
  const lambda::LambdaModel* model = nullptr;
  lambda::Config initial_config;
  PlatformOptions options;  // per-tenant control interval + cold-start seed
};

/// Per-run counters, kept as a plain snapshot view for callers; every field
/// is also mirrored into the process metrics registry under sim.runtime.*
/// (counters tick_group / control_tick / batched_window / cache_hit /
/// cache_miss, histograms batch_encode_seconds / tick_group_seconds /
/// tenant_phase_seconds — DESIGN.md §9).
struct RuntimeStats {
  std::size_t tick_groups = 0;      // distinct control-tick times processed
  std::size_t control_ticks = 0;    // per-tenant control decisions
  std::size_t batched_windows = 0;  // windows routed through the shared
                                    // encoder (cache misses)
  /// Split-controller window-cache accounting, derived from the tick
  /// requests the runtime itself sees (a split tick that needs no encoding
  /// IS a window-cache hit). This is the single source of truth for
  /// solo-vs-batched hit-rate comparisons — benches must not re-derive hit
  /// rates from controller internals.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Total wall time inside the shared encoder's batched forwards.
  double encode_seconds = 0.0;

  double cache_hit_rate() const {
    const std::size_t probes = cache_hits + cache_misses;
    return probes > 0 ? static_cast<double>(cache_hits) /
                            static_cast<double>(probes)
                      : 0.0;
  }
};

/// The merged event loop. With a shared encoder, all SplitController
/// tenants ticking at the same instant are encoded in one forward; without
/// one, every controller runs its plain decide() (still one loop).
class Runtime {
 public:
  explicit Runtime(BatchEncoder* shared_encoder = nullptr)
      : encoder_(shared_encoder) {}

  void add_tenant(TenantSpec spec);
  std::size_t tenant_count() const { return tenants_.size(); }

  /// Replay every tenant to the end of its trace. Returns one PlatformRun
  /// per tenant, in add_tenant() order. Each tenant's run is bit-identical
  /// to a solo run_platform() with the same spec.
  std::vector<PlatformRun> run();

  const RuntimeStats& stats() const { return stats_; }

 private:
  BatchEncoder* encoder_;
  std::vector<TenantSpec> tenants_;
  RuntimeStats stats_;
};

}  // namespace deepbat::sim
