#include "sim/batch_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace deepbat::sim {

double SimResult::drop_rate() const {
  const std::size_t total = offered();
  return total == 0 ? 0.0
                    : static_cast<double>(dropped) / static_cast<double>(total);
}

double SimResult::cost_per_request() const {
  return requests.empty() ? 0.0
                          : total_cost / static_cast<double>(requests.size());
}

std::vector<double> SimResult::latencies() const {
  std::vector<double> out;
  out.reserve(requests.size());
  for (const auto& r : requests) out.push_back(r.latency());
  return out;
}

std::optional<double> SimResult::latency_quantile(double q) const {
  if (requests.empty()) return std::nullopt;
  const auto lat = latencies();
  return quantile(lat, q);
}

double SimResult::mean_batch_size() const {
  if (invocations == 0) return 0.0;
  return static_cast<double>(requests.size()) /
         static_cast<double>(invocations);
}

std::span<const RequestRecord> SimResult::requests_since(
    std::size_t seen) const {
  if (seen >= requests.size()) return {};
  return std::span<const RequestRecord>(requests).subspan(seen);
}

BatchSimulator::BatchSimulator(const lambda::LambdaModel& model,
                               lambda::Config config,
                               std::optional<std::uint64_t> cold_start_seed,
                               const FaultPlan* faults,
                               std::uint64_t fault_stream)
    : config_(config) {
  owned_cpu_.emplace(model);
  init(cold_start_seed, faults, fault_stream);
}

BatchSimulator::BatchSimulator(const lambda::Backend& backend,
                               lambda::Config config,
                               std::optional<std::uint64_t> cold_start_seed,
                               const FaultPlan* faults,
                               std::uint64_t fault_stream)
    : backend_(&backend), config_(config) {
  init(cold_start_seed, faults, fault_stream);
}

void BatchSimulator::init(std::optional<std::uint64_t> cold_start_seed,
                          const FaultPlan* faults,
                          std::uint64_t fault_stream) {
  be().validate(config_);
  if (cold_start_seed.has_value()) {
    cold_rng_.emplace(mix_stream_seed(*cold_start_seed, fault_stream));
  }
  if (faults != nullptr && faults->enabled()) {
    faults_.emplace(*faults, fault_stream);
  }
}

void BatchSimulator::set_config(const lambda::Config& config) {
  be().validate(config);
  config_ = config;
}

void BatchSimulator::offer(double time) {
  DEEPBAT_CHECK(time >= last_time_,
                "BatchSimulator::offer: arrivals must be non-decreasing");
  advance_to(time);
  last_time_ = time;
  if (open_arrivals_.empty()) {
    open_deadline_ = time + config_.timeout_s;
    open_batch_limit_ = config_.batch_size;
  }
  open_arrivals_.push_back(time);
  if (static_cast<std::int64_t>(open_arrivals_.size()) >= open_batch_limit_) {
    dispatch(time);
  }
}

void BatchSimulator::advance_to(double now) {
  if (!open_arrivals_.empty() && open_deadline_ <= now) {
    dispatch(open_deadline_);
  }
  last_time_ = std::max(last_time_, now);
}

void BatchSimulator::finalize() {
  if (!open_arrivals_.empty()) {
    dispatch(std::max(open_deadline_, last_time_));
  }
}

void BatchSimulator::dispatch(double time) {
  if (faults_.has_value()) {
    dispatch_faulted(time);
    return;
  }
  const auto batch = static_cast<std::int64_t>(open_arrivals_.size());
  double service = be().service_time(config_, batch);
  const double p_cold = be().cold_start_probability();
  if (cold_rng_.has_value() && p_cold > 0.0 && cold_rng_->uniform() < p_cold) {
    service += be().cold_start(config_);
  }
  const double invocation_cost = be().invocation_cost(config_, service);
  for (double arrival : open_arrivals_) {
    RequestRecord rec;
    rec.arrival = arrival;
    rec.dispatch = time;
    rec.completion = time + service;
    rec.batch_actual = batch;
    rec.cost_share = invocation_cost / static_cast<double>(batch);
    result_.requests.push_back(rec);
  }
  result_.total_cost += invocation_cost;
  ++result_.invocations;
  open_arrivals_.clear();
}

void BatchSimulator::dispatch_faulted(double time) {
  auto& faults = *faults_;
  const auto batch = static_cast<std::int64_t>(open_arrivals_.size());
  const std::int64_t max_attempts = faults.plan().retry.max_attempts;

  faults.begin_batch(time);
  // Every billed attempt (retries included) is accumulated into the batch's
  // cost, so a retried batch re-bills into each request's cost_share.
  double batch_cost = 0.0;
  double first_dispatch = 0.0;
  double completion = 0.0;
  bool served = false;
  double start = faults.admit(time);
  for (std::int64_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt == 1) first_dispatch = start;
    double service = be().service_time(config_, batch);
    const double p_cold = be().cold_start_probability();
    if (cold_rng_.has_value() && p_cold > 0.0 &&
        cold_rng_->uniform() < p_cold) {
      service += be().cold_start(config_);
    }
    const auto outcome = faults.on_attempt(start);
    service = service * outcome.service_multiplier + outcome.extra_service_s;
    completion = start + service;
    batch_cost += be().invocation_cost(config_, service);
    ++result_.invocations;
    faults.on_completion(completion);
    if (!outcome.failed) {
      served = true;
      break;
    }
    if (attempt < max_attempts) {
      ++result_.retries;
      start = faults.admit(completion + faults.backoff_delay(attempt));
    }
  }
  result_.total_cost += batch_cost;
  if (served) {
    for (double arrival : open_arrivals_) {
      RequestRecord rec;
      rec.arrival = arrival;
      rec.dispatch = first_dispatch;
      rec.completion = completion;
      rec.batch_actual = batch;
      rec.cost_share = batch_cost / static_cast<double>(batch);
      result_.requests.push_back(rec);
    }
  } else {
    result_.dropped += open_arrivals_.size();
    result_.dropped_arrivals.insert(result_.dropped_arrivals.end(),
                                    open_arrivals_.begin(),
                                    open_arrivals_.end());
    faults.record_drop(open_arrivals_.size());
  }
  open_arrivals_.clear();
}

void BatchSimulator::save_state(CheckpointWriter& w) const {
  save_config(w, config_);
  w.doubles(open_arrivals_);
  w.f64(open_deadline_);
  w.i64(open_batch_limit_);
  w.f64(last_time_);
  w.u64(result_.requests.size());
  for (const RequestRecord& rec : result_.requests) {
    w.f64(rec.arrival);
    w.f64(rec.dispatch);
    w.f64(rec.completion);
    w.i64(rec.batch_actual);
    w.f64(rec.cost_share);
  }
  w.u64(result_.invocations);
  w.f64(result_.total_cost);
  w.doubles(result_.dropped_arrivals);
  w.u64(result_.retries);
  w.u64(result_.dropped);
  w.boolean(cold_rng_.has_value());
  if (cold_rng_.has_value()) save_rng(w, *cold_rng_);
  w.boolean(faults_.has_value());
  if (faults_.has_value()) faults_->save_state(w);
}

void BatchSimulator::restore_state(CheckpointReader& r) {
  const lambda::Config config = restore_config(r);
  be().validate(config);
  config_ = config;
  open_arrivals_ = r.doubles();
  open_deadline_ = r.f64();
  open_batch_limit_ = r.i64();
  last_time_ = r.f64();
  result_ = SimResult{};
  const std::uint64_t served = r.u64();
  // 40 payload bytes per record; a count the remaining payload cannot hold
  // is corruption — reject before reserving.
  DEEPBAT_CHECK(served <= r.remaining() / 40,
                "BatchSimulator: checkpoint request count exceeds payload");
  result_.requests.reserve(static_cast<std::size_t>(served));
  for (std::uint64_t i = 0; i < served; ++i) {
    RequestRecord rec;
    rec.arrival = r.f64();
    rec.dispatch = r.f64();
    rec.completion = r.f64();
    rec.batch_actual = r.i64();
    rec.cost_share = r.f64();
    result_.requests.push_back(rec);
  }
  result_.invocations = static_cast<std::size_t>(r.u64());
  result_.total_cost = r.f64();
  result_.dropped_arrivals = r.doubles();
  result_.retries = static_cast<std::size_t>(r.u64());
  result_.dropped = static_cast<std::size_t>(r.u64());
  const bool had_cold = r.boolean();
  DEEPBAT_CHECK(had_cold == cold_rng_.has_value(),
                "BatchSimulator: checkpoint cold-start layer does not match "
                "this simulator's construction");
  if (had_cold) restore_rng(r, *cold_rng_);
  const bool had_faults = r.boolean();
  DEEPBAT_CHECK(had_faults == faults_.has_value(),
                "BatchSimulator: checkpoint fault layer does not match this "
                "simulator's construction");
  if (had_faults) faults_->restore_state(r);
}

SimResult simulate_trace(std::span<const double> arrivals,
                         const lambda::Config& config,
                         const lambda::LambdaModel& model,
                         std::optional<std::uint64_t> cold_start_seed,
                         const FaultPlan* faults,
                         std::uint64_t fault_stream) {
  BatchSimulator sim(model, config, cold_start_seed, faults, fault_stream);
  for (double t : arrivals) sim.offer(t);
  sim.finalize();
  return sim.result();
}

SimResult simulate_trace(std::span<const double> arrivals,
                         const lambda::Config& config,
                         const lambda::Backend& backend,
                         std::optional<std::uint64_t> cold_start_seed,
                         const FaultPlan* faults,
                         std::uint64_t fault_stream) {
  BatchSimulator sim(backend, config, cold_start_seed, faults, fault_stream);
  for (double t : arrivals) sim.offer(t);
  sim.finalize();
  return sim.result();
}

}  // namespace deepbat::sim
