#pragma once
// Ground-truth optimizer: exhaustive search over the config grid, scoring
// every configuration by simulating the actual arrival window (paper
// §IV-A: "The ground truth is obtained using a search across all possible
// configurations of memory size, batch size, and timeout").

#include <optional>
#include <span>

#include "sim/batch_sim.hpp"

namespace deepbat::sim {

struct ConfigEvaluation {
  lambda::Config config;
  double latency_percentile = 0.0;  // at the requested percentile
  double cost_per_request = 0.0;
  bool feasible = false;  // latency percentile <= SLO
};

struct GroundTruthResult {
  /// Cheapest feasible config; nullopt when no config meets the SLO.
  std::optional<ConfigEvaluation> best;
  /// Every evaluated configuration (grid order).
  std::vector<ConfigEvaluation> table;
};

/// Evaluate one config on a window of arrivals.
ConfigEvaluation evaluate_config(std::span<const double> arrivals,
                                 const lambda::Config& config,
                                 const lambda::LambdaModel& model, double slo_s,
                                 double percentile);

/// Exhaustive search (parallelized over the grid). `percentile` in (0, 1),
/// e.g. 0.95 for the paper's 95th-percentile SLO.
GroundTruthResult ground_truth_search(std::span<const double> arrivals,
                                      const lambda::ConfigGrid& grid,
                                      const lambda::LambdaModel& model,
                                      double slo_s, double percentile = 0.95);

}  // namespace deepbat::sim
