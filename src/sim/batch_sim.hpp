#pragma once
// Fast batching simulator — the ground-truth engine (paper §IV-A: "The
// ground truth ... is obtained by simulation as in [10], [18]").
//
// Model assumptions (inherited from BATCH and validated there on Lambda):
//  * The buffer opens a batch at the first arrival into an empty buffer and
//    dispatches it after `timeout_s`, or immediately when the `batch_size`-th
//    request joins, whichever comes first.
//  * Serverless autoscaling gives every dispatched batch its own function
//    instance, so batches never queue behind each other.
//  * Service time is deterministic given (memory, actual batch size); an
//    optional cold-start penalty hits an invocation with configured
//    probability.
//
// Request latency = (dispatch time - arrival time) + service time.
//
// Fault injection (strictly opt-in, DESIGN.md §11): construct with a
// FaultPlan whose enabled() is true and the dispatch path grows retries —
// a batch whose attempt fails transiently retries with capped exponential
// backoff (every attempt is billed), and a batch exhausting
// retry.max_attempts is dropped: its requests land in `dropped_arrivals`,
// never in `requests`. Without a plan (or with a disabled one) the
// simulator runs the exact pre-fault path, byte for byte.

#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "lambda/backend.hpp"
#include "lambda/model.hpp"
#include "sim/faults.hpp"

namespace deepbat::sim {

struct RequestRecord {
  double arrival = 0.0;
  double dispatch = 0.0;
  double completion = 0.0;
  std::int64_t batch_actual = 0;  // size of the batch this request rode in
  double cost_share = 0.0;  // this request's share of its invocation's cost
  double latency() const { return completion - arrival; }
};

struct SimResult {
  std::vector<RequestRecord> requests;  // served requests only
  std::size_t invocations = 0;          // every billed attempt, incl. retries
  double total_cost = 0.0;

  /// Arrival times of requests whose batch exhausted retry.max_attempts.
  std::vector<double> dropped_arrivals;
  std::size_t retries = 0;  // failed attempts that were retried
  std::size_t dropped = 0;  // requests dropped after max_attempts

  std::size_t served() const { return requests.size(); }
  std::size_t offered() const { return requests.size() + dropped; }
  double drop_rate() const;
  double cost_per_request() const;
  std::vector<double> latencies() const;
  /// q in [0, 1]; nullopt if nothing was served (e.g. a zero-served window
  /// or every request dropped).
  std::optional<double> latency_quantile(double q) const;
  double mean_batch_size() const;

  /// Served requests appended since a cursor-style reader's last visit: the
  /// suffix [seen, size). Records land in dispatch order and are never
  /// reordered, so an observer advancing `seen` to size() each tick sees
  /// every request exactly once (src/learn/ sample harvesting).
  std::span<const RequestRecord> requests_since(std::size_t seen) const;
};

/// Streaming simulator whose configuration can be switched between
/// arrivals — this is how the controller-in-the-loop experiments replay a
/// trace while DeepBAT/BATCH adjust (M, B, T) on the fly. A batch that is
/// already open keeps the deadline it was opened with; the new config
/// applies from the next batch on.
class BatchSimulator {
 public:
  /// `faults` may be null (no fault layer). When non-null and
  /// faults->enabled(), all fault draws come from the per-tenant stream
  /// (plan.seed, fault_stream); the legacy i.i.d. cold-start stream is
  /// likewise re-seeded per tenant via mix_stream_seed(cold_start_seed,
  /// fault_stream) — stream 0 keeps today's exact sequence.
  ///
  /// This legacy constructor wraps `model` in an internal CpuLambdaBackend
  /// whose every call delegates to the exact LambdaModel member the
  /// pre-backend simulator used — replays through it are byte-stable.
  BatchSimulator(const lambda::LambdaModel& model, lambda::Config config,
                 std::optional<std::uint64_t> cold_start_seed = std::nullopt,
                 const FaultPlan* faults = nullptr,
                 std::uint64_t fault_stream = 0);

  /// Heterogeneous-backend constructor (DESIGN.md §13): dispatching,
  /// cold-start draws, and billing all go through `backend`; the caller
  /// keeps it alive for the simulator's lifetime.
  BatchSimulator(const lambda::Backend& backend, lambda::Config config,
                 std::optional<std::uint64_t> cold_start_seed = std::nullopt,
                 const FaultPlan* faults = nullptr,
                 std::uint64_t fault_stream = 0);

  void set_config(const lambda::Config& config);
  const lambda::Config& config() const { return config_; }

  /// Feed the next arrival (non-decreasing times). Any batch whose timeout
  /// fired before `time` is dispatched first.
  void offer(double time);

  /// Dispatch every batch whose deadline is <= `now`.
  void advance_to(double now);

  /// Dispatch the open batch (if any) at its deadline regardless of `now` —
  /// call once at end of trace.
  void finalize();

  /// Results accumulated so far (records are appended in dispatch order).
  const SimResult& result() const { return result_; }

  /// Number of requests waiting in the open batch.
  std::size_t pending() const { return open_arrivals_.size(); }

  /// Checkpoint the simulator's dynamic state — active config, the open
  /// batch (arrivals, deadline, captured limit), accumulated results, and
  /// the cold-start / fault RNG positions (sim/checkpoint.hpp). The backend
  /// and fault plan are static construction inputs: the owner rebuilds the
  /// simulator from the same spec and then restores into it; restore_state
  /// checks that the presence of the cold-start and fault layers matches.
  void save_state(CheckpointWriter& w) const;
  void restore_state(CheckpointReader& r);

 private:
  void dispatch(double time);
  void dispatch_faulted(double time);
  void init(std::optional<std::uint64_t> cold_start_seed,
            const FaultPlan* faults, std::uint64_t fault_stream);
  /// The serving backend: the external one, or the owned CPU wrapper from
  /// the legacy constructor. Resolved per call (never cached as a
  /// self-pointer) so the simulator stays safely copyable.
  const lambda::Backend& be() const {
    return owned_cpu_.has_value() ? *owned_cpu_ : *backend_;
  }

  const lambda::Backend* backend_ = nullptr;
  std::optional<lambda::CpuLambdaBackend> owned_cpu_;
  lambda::Config config_;
  std::optional<Rng> cold_rng_;
  std::optional<FaultInjector> faults_;
  std::vector<double> open_arrivals_;
  double open_deadline_ = 0.0;
  std::int64_t open_batch_limit_ = 0;  // B captured when the batch opened
  double last_time_ = 0.0;
  SimResult result_;
};

/// Convenience: run a whole trace under one fixed config and finalize.
SimResult simulate_trace(std::span<const double> arrivals,
                         const lambda::Config& config,
                         const lambda::LambdaModel& model,
                         std::optional<std::uint64_t> cold_start_seed =
                             std::nullopt,
                         const FaultPlan* faults = nullptr,
                         std::uint64_t fault_stream = 0);

/// Same, dispatching through an arbitrary backend.
SimResult simulate_trace(std::span<const double> arrivals,
                         const lambda::Config& config,
                         const lambda::Backend& backend,
                         std::optional<std::uint64_t> cold_start_seed =
                             std::nullopt,
                         const FaultPlan* faults = nullptr,
                         std::uint64_t fault_stream = 0);

}  // namespace deepbat::sim
