#pragma once
// Global-tick-grid scheduling for the sharded multi-tenant runtime. Every
// tenant's control ticks live at k * control_interval_s — computed by
// MULTIPLICATION, never by accumulation — so two tenants sharing an
// interval produce bitwise-equal tick instants no matter which shard (or
// solo replay) computes them. The scheduler owns only the tick arithmetic:
// who ticks when, which slots fold into one tick group, and how far a
// shard may safely run ahead while a group's batched encode is in flight.
// Execution state (simulators, controllers, encoders) lives in
// RuntimeShard.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace deepbat::sim {

class TickScheduler {
 public:
  /// Register one tenant; returns its slot index. The first tick is the
  /// grid instant at or immediately before `start_time` (a trace starting
  /// on the grid keeps its historical first tick). A tenant with
  /// `never_ticks` (empty trace) is born retired.
  std::size_t add(double interval_s, double start_time, double end_time,
                  bool never_ticks);

  std::size_t size() const { return slots_.size(); }

  /// Next tick instant of slot i: tick_index * interval.
  double tick_time(std::size_t i) const {
    const Slot& s = slots_[i];
    return static_cast<double>(s.tick_index) * s.interval;
  }

  bool done(std::size_t i) const { return slots_[i].done; }

  /// Form the next tick group: the earliest pending tick instant across
  /// all live slots, and every slot whose next tick is bitwise-equal to
  /// it. `group` is overwritten, in slot order. Returns std::nullopt when
  /// every slot is retired.
  std::optional<double> next_group(std::vector<std::size_t>& group) const;

  /// The earliest tick instant strictly after a group at time `t`,
  /// assuming that group's members tick next at their following grid
  /// point. No slot can tick — and therefore no tenant's configuration can
  /// change — before this instant, so it is the horizon a shard may
  /// pre-advance the group's NON-members to while the group's batched
  /// encode runs (the double-buffered tick overlap). +infinity when no
  /// further tick exists.
  double next_instant_after(double t) const;

  /// Slot i ticked at its current grid point: advance to the next one and
  /// retire the slot once that passes its trace end.
  void complete_tick(std::size_t i);

 private:
  struct Slot {
    std::int64_t tick_index = 0;  // next tick = tick_index * interval
    double interval = 0.0;
    double end = 0.0;
    bool done = false;
  };
  std::vector<Slot> slots_;
};

}  // namespace deepbat::sim
