#pragma once
// Global-tick-grid scheduling for the sharded multi-tenant runtime. Every
// tenant's control ticks live at k * control_interval_s — computed by
// MULTIPLICATION, never by accumulation — so two tenants sharing an
// interval produce bitwise-equal tick instants no matter which shard (or
// solo replay) computes them. The scheduler owns only the tick arithmetic:
// who ticks when, which slots fold into one tick group, and how far a
// shard may safely run ahead while a group's batched encode is in flight.
// Execution state (simulators, controllers, encoders) lives in
// RuntimeShard.
//
// Internally the pending ticks live in a hierarchical calendar queue
// (DESIGN.md §15): an array of B buckets of width w seconds, addressed by
// absolute bucket index floor(t / w) masked into the array, plus an
// overflow day-file for events beyond the current lap of B buckets. The
// cursor walks buckets forward in time; complete_tick() re-files a slot at
// its next grid instant and leaves the old entry behind as a stale record
// that the next scan drops (lazy deletion). Overflow is consolidated
// lazily — only when the cursor exhausts its lap — and the queue geometry
// (w ~ one expected tick event, B ~ live slots) is rebuilt when the live
// population grows or shrinks past its sizing band, so next_group() and
// complete_tick() stay O(1) amortized per tick event at any slot count
// instead of the pre-calendar O(slots) linear scan.
//
// The observable contract is unchanged from the linear-scan scheduler:
// groups form on the earliest pending instant, members are reported in
// ascending slot order, and equal instants are BITWISE equal doubles (so
// they always land in one bucket and one group).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace deepbat::sim {

class TickScheduler {
 public:
  /// Register one tenant; returns its slot index. The first tick is the
  /// grid instant at or immediately before `start_time` (a trace starting
  /// on the grid keeps its historical first tick). A tenant with
  /// `never_ticks` (empty trace) is born retired.
  std::size_t add(double interval_s, double start_time, double end_time,
                  bool never_ticks);

  /// Size hint for bulk registration (reserves the slot table).
  void reserve(std::size_t slots) { slots_.reserve(slots); }

  std::size_t size() const { return slots_.size(); }

  /// Slots that are still live (not retired / never_ticks).
  std::size_t live() const { return live_; }

  /// Next tick instant of slot i: tick_index * interval.
  double tick_time(std::size_t i) const {
    const Slot& s = slots_[i];
    return static_cast<double>(s.tick_index) * s.interval;
  }

  bool done(std::size_t i) const { return slots_[i].done; }

  /// Next tick index of slot i (checkpoint save: the slot's whole progress
  /// is this index plus the `done` flag).
  std::int64_t tick_index(std::size_t i) const {
    return slots_[i].tick_index;
  }

  /// Form the next tick group: the earliest pending tick instant across
  /// all live slots, and every slot whose next tick is bitwise-equal to
  /// it. `group` is overwritten, in slot order. Returns std::nullopt when
  /// every slot is retired. (Non-const: the calendar cursor advances.)
  std::optional<double> next_group(std::vector<std::size_t>& group);

  /// The earliest tick instant strictly after a group at time `t`,
  /// assuming that group's members tick next at their following grid
  /// point. No slot can tick — and therefore no tenant's configuration can
  /// change — before this instant, so it is the horizon a shard may
  /// pre-advance the group's NON-members to while the group's batched
  /// encode runs (the double-buffered tick overlap). +infinity when no
  /// further tick exists. Must be called between next_group() returning
  /// `t` and the group's complete_tick() calls.
  double next_instant_after(double t) const;

  /// Slot i ticked at its current grid point: advance to the next one and
  /// retire the slot once that passes its trace end.
  void complete_tick(std::size_t i);

  /// Checkpoint restore (sim/checkpoint.hpp): overwrite slot i's progress —
  /// the next tick index and the retirement flag — with saved state. The
  /// slot must already be registered via add() with its original
  /// interval/end/never_ticks; call reset_calendar() once after the last
  /// restore_slot() and before the next next_group().
  void restore_slot(std::size_t i, std::int64_t tick_index, bool done);

  /// Drop the calendar and recompute the live population from the slot
  /// table. The calendar (geometry, cursor, overflow) is derived state —
  /// none of it is observable through next_group()'s contract — so the next
  /// next_group() simply rebuilds it lazily from the restored slots.
  void reset_calendar();

 private:
  struct Slot {
    std::int64_t tick_index = 0;  // next tick = tick_index * interval
    double interval = 0.0;
    double end = 0.0;
    bool done = false;
  };

  /// One pending tick: the instant is recorded alongside the slot so a
  /// re-filed slot's abandoned entry is recognizably stale
  /// (entry.t != tick_time(slot) or the slot retired).
  struct Event {
    double t = 0.0;
    std::uint32_t slot = 0;
  };

  bool stale(const Event& e) const {
    const Slot& s = slots_[e.slot];
    return s.done || e.t != static_cast<double>(s.tick_index) * s.interval;
  }

  /// Absolute bucket index of instant t (bucket b covers
  /// [b * width_, (b + 1) * width_)).
  std::int64_t abs_bucket(double t) const;

  /// File one live event into its bucket or the overflow list. May rewind
  /// the cursor (and trigger a rebuild) when t precedes the current lap —
  /// only possible through add() after ticking started.
  void insert(const Event& e);

  /// Rebuild the calendar from the current live population: recompute the
  /// bucket width from the live tick rate, resize the bucket array, and
  /// re-file every live event. O(live + buckets).
  void rebuild();

  /// Move overflow events that fall inside the (new) lap into buckets and
  /// advance the lap window. Called when the cursor exhausts its lap; when
  /// every pending event is far in the future, jumps the lap straight to
  /// the earliest overflow instant instead of walking empty buckets.
  void consolidate();

  std::vector<Slot> slots_;
  std::size_t live_ = 0;

  // Calendar geometry. Built lazily on the first next_group() so bulk
  // add() runs size the queue once; buckets_.empty() means "not built".
  std::vector<std::vector<Event>> buckets_;
  std::size_t bucket_mask_ = 0;     // buckets_.size() - 1 (power of two)
  double width_ = 1.0;              // seconds per bucket
  std::int64_t cursor_ = 0;         // absolute index of the current bucket
  std::int64_t lap_end_ = 0;        // first absolute index beyond this lap
  std::vector<Event> overflow_;     // events at abs_bucket >= lap_end_
  double overflow_min_ = 0.0;       // min instant in overflow_ (valid when
                                    // overflow_ is non-empty)
  double rate_sum_ = 0.0;           // sum over live slots of 1 / interval
};

}  // namespace deepbat::sim
