#include "sim/ground_truth.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace deepbat::sim {

ConfigEvaluation evaluate_config(std::span<const double> arrivals,
                                 const lambda::Config& config,
                                 const lambda::LambdaModel& model, double slo_s,
                                 double percentile) {
  DEEPBAT_CHECK(!arrivals.empty(), "evaluate_config: empty window");
  DEEPBAT_CHECK(percentile > 0.0 && percentile < 1.0,
                "evaluate_config: percentile out of (0, 1)");
  const SimResult result = simulate_trace(arrivals, config, model);
  ConfigEvaluation eval;
  eval.config = config;
  // A zero-served window (possible under fault injection) evaluates as
  // +inf latency — never feasible, never the cost argmin.
  eval.latency_percentile = result.latency_quantile(percentile)
                                .value_or(std::numeric_limits<double>::infinity());
  eval.cost_per_request = result.cost_per_request();
  eval.feasible = eval.latency_percentile <= slo_s;
  return eval;
}

GroundTruthResult ground_truth_search(std::span<const double> arrivals,
                                      const lambda::ConfigGrid& grid,
                                      const lambda::LambdaModel& model,
                                      double slo_s, double percentile) {
  const auto configs = grid.enumerate();
  DEEPBAT_CHECK(!configs.empty(), "ground_truth_search: empty grid");
  GroundTruthResult result;
  result.table = parallel_map<ConfigEvaluation>(
      configs.size(),
      [&](std::size_t i) {
        return evaluate_config(arrivals, configs[i], model, slo_s, percentile);
      },
      /*grain=*/1);  // each item replays the whole arrival trace — always split
  for (const auto& eval : result.table) {
    if (!eval.feasible) continue;
    if (!result.best.has_value() ||
        eval.cost_per_request < result.best->cost_per_request) {
      result.best = eval;
    }
  }
  return result;
}

}  // namespace deepbat::sim
