#include "sim/runtime.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/runtime_shard.hpp"

namespace deepbat::sim {

void Runtime::add_tenant(TenantSpec spec) {
  DEEPBAT_CHECK(spec.trace != nullptr, "Runtime: tenant trace is null");
  DEEPBAT_CHECK(spec.controller != nullptr,
                "Runtime: tenant controller is null");
  DEEPBAT_CHECK(spec.model != nullptr || spec.backend != nullptr,
                "Runtime: tenant needs a lambda model or a backend");
  DEEPBAT_CHECK(spec.options.control_interval_s > 0.0,
                "Runtime: control interval must be positive");
  // Parse-boundary config validation (DESIGN.md §13): reject out-of-range
  // initial configs here, with a bound-specific message, instead of letting
  // them surface from deep inside the replay. The (backend, config) pair is
  // memoized — bulk registrations reuse one pair, and a million tenants
  // must not redo the identical bounds work per call.
  if (spec.backend != validated_backend_ ||
      !validated_config_.has_value() ||
      !(spec.initial_config == *validated_config_)) {
    if (spec.backend != nullptr) {
      spec.backend->validate(spec.initial_config);
    } else if (auto err = spec.initial_config.validate()) {
      throw *err;
    }
    validated_backend_ = spec.backend;
    validated_config_ = spec.initial_config;
  }
  tenants_.push_back(std::move(spec));
}

std::vector<PlatformRun> Runtime::run() {
  std::vector<PlatformRun> runs(tenants_.size());
  if (tenants_.empty()) return runs;
  stats_ = RuntimeStats{};

  // Deterministic partition: tenant i -> shard i mod S. The assignment is
  // part of no contract — the per-row determinism of the batched encode
  // makes EVERY partition produce bit-identical per-tenant results — but a
  // fixed rule keeps stats and metrics reproducible run over run.
  const std::size_t shard_count =
      std::clamp<std::size_t>(options_.shards, 1, tenants_.size());

  std::vector<std::unique_ptr<BatchEncoder>> owned_encoders;
  std::vector<std::unique_ptr<BatchScorer>> owned_scorers;
  std::vector<std::unique_ptr<RuntimeShard>> shards;
  shards.reserve(shard_count);

  // Overlap needs a pool slot for the in-flight encode; it can only pay
  // off in a shard that owns at least two tenants (otherwise there is
  // nothing to pre-advance while the forward runs).
  const bool overlap = options_.overlap_encode && encoder_ != nullptr &&
                       tenants_.size() > shard_count;
  const std::size_t pool_threads = (shard_count - 1) + (overlap ? 1 : 0);
  std::optional<WorkerPool> pool;
  if (pool_threads > 0) pool.emplace(pool_threads);

  for (std::size_t s = 0; s < shard_count; ++s) {
    BatchEncoder* encoder = encoder_;
    if (encoder_ != nullptr && encoder_factory_ && shard_count > 1) {
      owned_encoders.push_back(encoder_factory_());
      if (owned_encoders.back() != nullptr) {
        encoder = owned_encoders.back().get();
      }
    }
    // The fused scorer rides the split path: without an encoder there are
    // no split ticks to score.
    BatchScorer* scorer = encoder != nullptr ? scorer_ : nullptr;
    if (scorer != nullptr && scorer_factory_ && shard_count > 1) {
      owned_scorers.push_back(scorer_factory_());
      if (owned_scorers.back() != nullptr) {
        scorer = owned_scorers.back().get();
      }
    }
    RuntimeShard::Options sopts;
    sopts.shard_id = s;
    sopts.shard_count = shard_count;
    sopts.overlap_encode = overlap;
    sopts.pool = pool.has_value() ? &*pool : nullptr;
    shards.push_back(std::make_unique<RuntimeShard>(sopts, encoder, scorer));
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards[s]->reserve(tenants_.size() / shard_count + 1);
  }
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    shards[i % shard_count]->add_tenant(tenants_[i], &runs[i]);
  }

  const bool stealing = options_.work_stealing && shard_count > 1;
  std::exception_ptr error;
  if (!stealing) {
    // Static schedule: shards 1..S-1 run as pool tasks; shard 0 runs on
    // the calling thread (the helping wait in WorkerPool would pull it
    // onto this thread anyway). Wait for every shard before rethrowing so
    // no shard is left touching its PlatformRuns when an error unwinds.
    std::vector<WorkerPool::Handle> handles;
    handles.reserve(shard_count > 0 ? shard_count - 1 : 0);
    for (std::size_t s = 1; s < shard_count; ++s) {
      handles.push_back(
          pool->submit([shard = shards[s].get()] { shard->run(); }));
    }
    try {
      shards[0]->run();
    } catch (...) {
      error = std::current_exception();
    }
    for (WorkerPool::Handle& h : handles) h.wait();
    for (WorkerPool::Handle& h : handles) {
      if (error != nullptr) break;
      try {
        h.rethrow();
      } catch (...) {
        error = std::current_exception();
      }
    }
  } else {
    // Work stealing (DESIGN.md §15): S executors over S claimable shards.
    // Each executor scans from its home shard, claims the first unclaimed
    // unfinished shard it meets, and executes ONE tick group (or the final
    // drain) under the claim. A shard's groups therefore run in the same
    // serial order as run() — only the executing thread varies — which is
    // what keeps stolen runs bit-identical to the static schedule.
    //
    // Termination: an executor retires when every shard is finished, or
    // when a full scan claimed nothing while every unfinished shard was
    // claimed by some other executor. The latter rule matters for
    // liveness: an executor can be SUSPENDED holding a claim (its
    // overlapped encode's helping wait may run another executor task
    // nested on the same stack), and anyone spinning on its shard would
    // deadlock the stack beneath. An executor that just released a claim
    // always rescans before retiring, so the last holder of an unfinished
    // shard either finishes it or hands it to a live executor.
    auto execute = [&shards, shard_count](std::size_t home) {
      for (;;) {
        bool all_finished = true;
        bool progressed = false;
        for (std::size_t k = 0; k < shard_count; ++k) {
          RuntimeShard* shard = shards[(home + k) % shard_count].get();
          if (shard->finished()) continue;
          all_finished = false;
          if (!shard->try_claim()) continue;
          // Re-check under the claim: the previous holder may have
          // finalized (or failed) the shard just before releasing.
          if (shard->finished()) {
            shard->release_claim();
            continue;
          }
          if (k != 0) shard->count_steal();
          try {
            if (!shard->run_quantum()) shard->finalize_run();
          } catch (...) {
            shard->fail(std::current_exception());
          }
          progressed = true;
          shard->release_claim();
        }
        if (all_finished) return;
        if (!progressed) {
          // Claimed nothing: every unfinished shard is being driven (or
          // held) by another executor — retire rather than spin against a
          // possibly-suspended holder.
          return;
        }
      }
    };
    std::vector<WorkerPool::Handle> handles;
    handles.reserve(shard_count - 1);
    for (std::size_t e = 1; e < shard_count; ++e) {
      handles.push_back(pool->submit([&execute, e] { execute(e); }));
    }
    execute(0);
    for (WorkerPool::Handle& h : handles) h.wait();
    for (const auto& shard : shards) {
      if (shard->error() != nullptr) {
        error = shard->error();
        break;
      }
    }
  }
  if (error != nullptr) std::rethrow_exception(error);

  // Fold per-shard stats in shard order: counts sum, rates recompute.
  for (const auto& shard : shards) stats_.merge(shard->stats());
  return runs;
}

}  // namespace deepbat::sim
