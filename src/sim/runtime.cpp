#include "sim/runtime.hpp"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace deepbat::sim {

void Runtime::add_tenant(TenantSpec spec) {
  DEEPBAT_CHECK(spec.trace != nullptr, "Runtime: tenant trace is null");
  DEEPBAT_CHECK(spec.controller != nullptr,
                "Runtime: tenant controller is null");
  DEEPBAT_CHECK(spec.model != nullptr, "Runtime: tenant lambda model is null");
  DEEPBAT_CHECK(spec.options.control_interval_s > 0.0,
                "Runtime: control interval must be positive");
  tenants_.push_back(std::move(spec));
}

std::vector<PlatformRun> Runtime::run() {
  // Per-tenant replay state. Control ticks live on a GLOBAL grid: tick k
  // fires at k * control_interval_s, computed by multiplication (never by
  // accumulation) so two tenants sharing an interval produce bitwise-equal
  // tick times and fold into one batched encoding. run_platform() wraps
  // this loop, so solo runs sit on the same grid and stay bit-identical.
  struct State {
    const TenantSpec* spec = nullptr;
    std::optional<BatchSimulator> sim;
    SplitController* split = nullptr;
    std::size_t next_arrival = 0;
    std::int64_t tick_index = 0;  // tick time = tick_index * interval
    double interval = 0.0;
    double end = 0.0;
    bool ticks_done = false;
    SplitController::TickRequest request;  // valid within one tick group
    std::size_t batch_slot = 0;            // row in this tick's batch
  };
  const auto tick_time = [](const State& st) {
    return static_cast<double>(st.tick_index) * st.interval;
  };

  std::vector<State> states(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    State& st = states[i];
    st.spec = &tenants_[i];
    if (st.spec->trace->empty()) {
      st.ticks_done = true;  // empty replay: no sim, no decisions
      continue;
    }
    st.sim.emplace(*st.spec->model, st.spec->initial_config,
                   st.spec->options.cold_start_seed);
    st.split = encoder_ != nullptr
                   ? dynamic_cast<SplitController*>(st.spec->controller)
                   : nullptr;
    st.interval = st.spec->options.control_interval_s;
    // First tick: the grid instant at or immediately before the trace start
    // (a trace starting on the grid keeps its historical first tick).
    st.tick_index = static_cast<std::int64_t>(
        std::floor(st.spec->trace->start_time() / st.interval));
    st.end = st.spec->trace->end_time();
  }

  std::vector<PlatformRun> runs(tenants_.size());
  std::vector<std::size_t> group;
  std::vector<float> batch_windows;
  std::vector<float> batch_out;

  // Registry mirrors of RuntimeStats (sim.runtime.*, DESIGN.md §9); handles
  // resolved once per run, outside the loop.
  auto& registry = obs::MetricsRegistry::instance();
  obs::Counter& c_tick_groups = registry.counter("sim.runtime.tick_group");
  obs::Counter& c_control_ticks = registry.counter("sim.runtime.control_tick");
  obs::Counter& c_batched = registry.counter("sim.runtime.batched_window");
  obs::Counter& c_hits = registry.counter("sim.runtime.cache_hit");
  obs::Counter& c_misses = registry.counter("sim.runtime.cache_miss");
  obs::Histogram& h_encode =
      registry.histogram("sim.runtime.batch_encode_seconds");
  obs::Histogram& h_group = registry.histogram("sim.runtime.tick_group_seconds");
  obs::Histogram& h_tenant =
      registry.histogram("sim.runtime.tenant_phase_seconds");
  const auto seconds_since = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  for (;;) {
    // Next control instant across all tenants; tenants whose ticks coincide
    // form one group and share the batched encoding below.
    double t = std::numeric_limits<double>::infinity();
    for (const State& st : states) {
      if (!st.ticks_done && tick_time(st) < t) t = tick_time(st);
    }
    if (t == std::numeric_limits<double>::infinity()) break;
    group.clear();
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (!states[i].ticks_done && tick_time(states[i]) == t) {
        group.push_back(i);
      }
    }

    obs::Span group_span("sim.runtime.tick_group");
    const auto group_start = std::chrono::steady_clock::now();

    // Phase 1 — per tenant: deliver arrivals up to t, dispatch due batches,
    // and let split controllers parse their window / probe their cache.
    batch_windows.clear();
    std::size_t batch_count = 0;
    for (const std::size_t i : group) {
      State& st = states[i];
      const workload::Trace& trace = *st.spec->trace;
      while (st.next_arrival < trace.size() && trace[st.next_arrival] <= t) {
        st.sim->offer(trace[st.next_arrival++]);
      }
      st.sim->advance_to(t);
      if (st.split != nullptr) {
        st.request = st.split->begin_tick(trace, t);
        if (st.request.needs_encoding) {
          DEEPBAT_CHECK(st.request.window.size() == encoder_->window_length(),
                        "Runtime: tenant window length differs from the "
                        "shared encoder's");
          batch_windows.insert(batch_windows.end(), st.request.window.begin(),
                               st.request.window.end());
          st.batch_slot = batch_count++;
          ++stats_.cache_misses;
          c_misses.add();
        } else {
          ++stats_.cache_hits;
          c_hits.add();
        }
      }
    }

    // Phase 2 — ONE batched forward for every cache miss in this tick.
    const std::size_t d = encoder_ != nullptr ? encoder_->encoding_dim() : 0;
    double encode_seconds = 0.0;
    if (batch_count > 0) {
      obs::Span encode_span("sim.runtime.batch_encode");
      const auto encode_start = std::chrono::steady_clock::now();
      batch_out.resize(batch_count * d);
      encoder_->encode(batch_windows, batch_count, batch_out);
      encode_seconds = seconds_since(encode_start);
      stats_.batched_windows += batch_count;
      stats_.encode_seconds += encode_seconds;
      c_batched.add(batch_count);
      h_encode.observe(encode_seconds);
    }

    // Phase 3 — per tenant: finish the decision and apply the new config.
    for (const std::size_t i : group) {
      State& st = states[i];
      lambda::Config cfg;
      if (st.split != nullptr) {
        const std::span<const float> row =
            st.request.needs_encoding
                ? std::span<const float>(batch_out.data() + st.batch_slot * d,
                                         d)
                : std::span<const float>{};
        cfg = st.split->finish_tick(row);
      } else {
        cfg = st.spec->controller->decide(*st.spec->trace, t);
      }
      st.sim->set_config(cfg);
      runs[i].decisions.push_back(ControlDecision{t, cfg});
      ++stats_.control_ticks;
      c_control_ticks.add();
      ++st.tick_index;
      if (tick_time(st) > st.end) st.ticks_done = true;
    }
    ++stats_.tick_groups;
    c_tick_groups.add();
    const double group_seconds = seconds_since(group_start);
    h_group.observe(group_seconds);
    // Tenant event-loop share of the group: everything except the shared
    // batched forward.
    h_tenant.observe(group_seconds - encode_seconds);
  }

  for (std::size_t i = 0; i < states.size(); ++i) {
    State& st = states[i];
    if (!st.sim.has_value()) continue;  // empty trace
    const workload::Trace& trace = *st.spec->trace;
    while (st.next_arrival < trace.size()) {
      st.sim->offer(trace[st.next_arrival++]);
    }
    st.sim->finalize();
    runs[i].result = st.sim->result();
  }
  return runs;
}

}  // namespace deepbat::sim
