#include "sim/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "sim/checkpoint.hpp"
#include "sim/runtime_shard.hpp"

namespace deepbat::sim {

void Runtime::add_tenant(TenantSpec spec) {
  DEEPBAT_CHECK(spec.trace != nullptr, "Runtime: tenant trace is null");
  DEEPBAT_CHECK(spec.controller != nullptr,
                "Runtime: tenant controller is null");
  DEEPBAT_CHECK(spec.model != nullptr || spec.backend != nullptr,
                "Runtime: tenant needs a lambda model or a backend");
  DEEPBAT_CHECK(spec.options.control_interval_s > 0.0,
                "Runtime: control interval must be positive");
  // Parse-boundary config validation (DESIGN.md §13): reject out-of-range
  // initial configs here, with a bound-specific message, instead of letting
  // them surface from deep inside the replay. The (backend, config) pair is
  // memoized — bulk registrations reuse one pair, and a million tenants
  // must not redo the identical bounds work per call.
  if (spec.backend != validated_backend_ ||
      !validated_config_.has_value() ||
      !(spec.initial_config == *validated_config_)) {
    if (spec.backend != nullptr) {
      spec.backend->validate(spec.initial_config);
    } else if (auto err = spec.initial_config.validate()) {
      throw *err;
    }
    validated_backend_ = spec.backend;
    validated_config_ = spec.initial_config;
  }
  tenants_.push_back(std::move(spec));
}

Runtime::Runtime(BatchEncoder* shared_encoder, RuntimeOptions options)
    : encoder_(shared_encoder), options_(options) {}

Runtime::~Runtime() = default;

void Runtime::start() {
  if (started_) return;
  started_ = true;

  // Deterministic partition: tenant i -> shard i mod S. The assignment is
  // part of no contract — the per-row determinism of the batched encode
  // makes EVERY partition produce bit-identical per-tenant results — but a
  // fixed rule keeps stats and metrics reproducible run over run, and lets
  // checkpoints lay tenants out in global order regardless of shard count.
  shard_count_ = std::clamp<std::size_t>(options_.shards, 1, tenants_.size());
  runs_.assign(tenants_.size(), PlatformRun{});
  shards_.reserve(shard_count_);

  // Overlap needs a pool slot for the in-flight encode; it can only pay
  // off in a shard that owns at least two tenants (otherwise there is
  // nothing to pre-advance while the forward runs).
  const bool overlap = options_.overlap_encode && encoder_ != nullptr &&
                       tenants_.size() > shard_count_;
  const std::size_t pool_threads = (shard_count_ - 1) + (overlap ? 1 : 0);
  if (pool_threads > 0) pool_.emplace(pool_threads);

  for (std::size_t s = 0; s < shard_count_; ++s) {
    BatchEncoder* encoder = encoder_;
    if (encoder_ != nullptr && encoder_factory_ && shard_count_ > 1) {
      owned_encoders_.push_back(encoder_factory_());
      if (owned_encoders_.back() != nullptr) {
        encoder = owned_encoders_.back().get();
      }
    }
    // The fused scorer rides the split path: without an encoder there are
    // no split ticks to score.
    BatchScorer* scorer = encoder != nullptr ? scorer_ : nullptr;
    if (scorer != nullptr && scorer_factory_ && shard_count_ > 1) {
      owned_scorers_.push_back(scorer_factory_());
      if (owned_scorers_.back() != nullptr) {
        scorer = owned_scorers_.back().get();
      }
    }
    RuntimeShard::Options sopts;
    sopts.shard_id = s;
    sopts.shard_count = shard_count_;
    sopts.overlap_encode = overlap;
    sopts.pool = pool_.has_value() ? &*pool_ : nullptr;
    shards_.push_back(std::make_unique<RuntimeShard>(sopts, encoder, scorer));
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    shards_[s]->reserve(tenants_.size() / shard_count_ + 1);
  }
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    shards_[i % shard_count_]->add_tenant(tenants_[i], &runs_[i]);
  }
}

std::vector<PlatformRun> Runtime::run() {
  if (tenants_.empty()) return {};
  start();
  const std::size_t shard_count = shard_count_;
  auto& shards = shards_;
  auto& pool = pool_;

  const bool stealing = options_.work_stealing && shard_count > 1;
  std::exception_ptr error;
  if (!stealing) {
    // Static schedule: shards 1..S-1 run as pool tasks; shard 0 runs on
    // the calling thread (the helping wait in WorkerPool would pull it
    // onto this thread anyway). Wait for every shard before rethrowing so
    // no shard is left touching its PlatformRuns when an error unwinds.
    std::vector<WorkerPool::Handle> handles;
    handles.reserve(shard_count > 0 ? shard_count - 1 : 0);
    for (std::size_t s = 1; s < shard_count; ++s) {
      handles.push_back(
          pool->submit([shard = shards[s].get()] { shard->run(); }));
    }
    try {
      shards[0]->run();
    } catch (...) {
      error = std::current_exception();
    }
    for (WorkerPool::Handle& h : handles) h.wait();
    for (WorkerPool::Handle& h : handles) {
      if (error != nullptr) break;
      try {
        h.rethrow();
      } catch (...) {
        error = std::current_exception();
      }
    }
  } else {
    // Work stealing (DESIGN.md §15): S executors over S claimable shards.
    // Each executor scans from its home shard, claims the first unclaimed
    // unfinished shard it meets, and executes ONE tick group (or the final
    // drain) under the claim. A shard's groups therefore run in the same
    // serial order as run() — only the executing thread varies — which is
    // what keeps stolen runs bit-identical to the static schedule.
    //
    // Termination: an executor retires when every shard is finished, or
    // when a full scan claimed nothing while every unfinished shard was
    // claimed by some other executor. The latter rule matters for
    // liveness: an executor can be SUSPENDED holding a claim (its
    // overlapped encode's helping wait may run another executor task
    // nested on the same stack), and anyone spinning on its shard would
    // deadlock the stack beneath. An executor that just released a claim
    // always rescans before retiring, so the last holder of an unfinished
    // shard either finishes it or hands it to a live executor.
    auto execute = [&shards, shard_count](std::size_t home) {
      for (;;) {
        bool all_finished = true;
        bool progressed = false;
        for (std::size_t k = 0; k < shard_count; ++k) {
          RuntimeShard* shard = shards[(home + k) % shard_count].get();
          if (shard->finished()) continue;
          all_finished = false;
          if (!shard->try_claim()) continue;
          // Re-check under the claim: the previous holder may have
          // finalized (or failed) the shard just before releasing.
          if (shard->finished()) {
            shard->release_claim();
            continue;
          }
          if (k != 0) shard->count_steal();
          try {
            if (!shard->run_quantum()) shard->finalize_run();
          } catch (...) {
            shard->fail(std::current_exception());
          }
          progressed = true;
          shard->release_claim();
        }
        if (all_finished) return;
        if (!progressed) {
          // Claimed nothing: every unfinished shard is being driven (or
          // held) by another executor — retire rather than spin against a
          // possibly-suspended holder.
          return;
        }
      }
    };
    std::vector<WorkerPool::Handle> handles;
    handles.reserve(shard_count - 1);
    for (std::size_t e = 1; e < shard_count; ++e) {
      handles.push_back(pool->submit([&execute, e] { execute(e); }));
    }
    execute(0);
    for (WorkerPool::Handle& h : handles) h.wait();
    for (const auto& shard : shards) {
      if (shard->error() != nullptr) {
        error = shard->error();
        break;
      }
    }
  }
  if (error != nullptr) std::rethrow_exception(error);

  // Fold per-shard stats in shard order on top of any pre-restore base:
  // counts sum, rates recompute, high-water marks take the max.
  stats_ = base_stats_;
  for (const auto& shard : shards) stats_.merge(shard->stats());
  return std::move(runs_);
}

void Runtime::run_until(double limit) {
  if (tenants_.empty()) return;
  start();
  // Sequential stepwise advance: shard results are schedule-invariant, so
  // draining each shard to the boundary on this thread is bit-identical to
  // the parallel paths (only the timing-dependent steals / queue-depth
  // stats can differ).
  for (const auto& shard : shards_) {
    while (shard->run_quantum(limit) == RuntimeShard::Quantum::kRan) {
    }
  }
}

namespace {

void save_stats(CheckpointWriter& w, const RuntimeStats& s) {
  w.u64(s.tick_groups);
  w.u64(s.control_ticks);
  w.u64(s.batched_windows);
  w.u64(s.encode_calls);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.bypassed_ticks);
  w.f64(s.encode_seconds);
  w.u64(s.scored_rows);
  w.u64(s.score_calls);
  w.f64(s.score_seconds);
  w.u64(s.fleet_groups);
  w.u64(s.cpu_invocations);
  w.u64(s.gpu_invocations);
  w.u64(s.steals);
  w.u64(s.max_queue_depth);
}

RuntimeStats restore_stats(CheckpointReader& r) {
  RuntimeStats s;
  s.tick_groups = static_cast<std::size_t>(r.u64());
  s.control_ticks = static_cast<std::size_t>(r.u64());
  s.batched_windows = static_cast<std::size_t>(r.u64());
  s.encode_calls = static_cast<std::size_t>(r.u64());
  s.cache_hits = static_cast<std::size_t>(r.u64());
  s.cache_misses = static_cast<std::size_t>(r.u64());
  s.bypassed_ticks = static_cast<std::size_t>(r.u64());
  s.encode_seconds = r.f64();
  s.scored_rows = static_cast<std::size_t>(r.u64());
  s.score_calls = static_cast<std::size_t>(r.u64());
  s.score_seconds = r.f64();
  s.fleet_groups = static_cast<std::size_t>(r.u64());
  s.cpu_invocations = static_cast<std::size_t>(r.u64());
  s.gpu_invocations = static_cast<std::size_t>(r.u64());
  s.steals = static_cast<std::size_t>(r.u64());
  s.max_queue_depth = static_cast<std::size_t>(r.u64());
  return s;
}

/// The tenant's checkpoint participants: its controller (mandatory) and its
/// observer (when set). In the learn/ stack one object plays both roles;
/// the layout records that so the state is written (and restored) once.
struct TenantHooks {
  Checkpointable* controller = nullptr;
  Checkpointable* observer = nullptr;  // null when absent or == controller
  bool shared = false;                 // observer IS the controller
};

TenantHooks tenant_hooks(const TenantSpec& spec) {
  TenantHooks hooks;
  hooks.controller = dynamic_cast<Checkpointable*>(spec.controller);
  DEEPBAT_CHECK(hooks.controller != nullptr,
                "Runtime: tenant '" + spec.name + "' controller (" +
                    spec.controller->name() +
                    ") does not implement sim::Checkpointable");
  if (spec.options.observer != nullptr) {
    Checkpointable* obs = dynamic_cast<Checkpointable*>(spec.options.observer);
    DEEPBAT_CHECK(obs != nullptr,
                  "Runtime: tenant '" + spec.name +
                      "' observer does not implement sim::Checkpointable");
    if (obs == hooks.controller) {
      hooks.shared = true;
    } else {
      hooks.observer = obs;
    }
  }
  return hooks;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void Runtime::save_checkpoint(const std::string& path) {
  DEEPBAT_CHECK(started_,
                "Runtime: save_checkpoint before run_until()/run() — there "
                "is no execution state to snapshot yet");
  const auto save_start = std::chrono::steady_clock::now();
  CheckpointWriter w;
  w.u64(tenants_.size());
  w.u64(shard_count_);  // informational: restore may use any shard count
  RuntimeStats snapshot = base_stats_;
  for (const auto& shard : shards_) snapshot.merge(shard->stats());
  save_stats(w, snapshot);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const TenantSpec& spec = tenants_[i];
    w.str(spec.name);
    w.u64(spec.options.fault_stream);
    shards_[i % shard_count_]->save_tenant(i / shard_count_, w);
    const auto& decisions = runs_[i].decisions;
    w.u64(decisions.size());
    for (const ControlDecision& d : decisions) {
      w.f64(d.time);
      save_config(w, d.config);
    }
    const TenantHooks hooks = tenant_hooks(spec);
    hooks.controller->save_state(w);
    if (hooks.shared) {
      w.u8(1);  // observer state already travels with the controller's
    } else if (hooks.observer != nullptr) {
      w.u8(2);
      hooks.observer->save_state(w);
    } else {
      w.u8(0);
    }
  }
  write_checkpoint_file(path, w.bytes());
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("sim.checkpoint.save").add();
  registry.histogram("sim.checkpoint.save_seconds")
      .observe(seconds_since(save_start));
}

void Runtime::restore_checkpoint(const std::string& path) {
  DEEPBAT_CHECK(!started_,
                "Runtime: restore_checkpoint must run on a fresh runtime, "
                "before any run_until()/run()");
  DEEPBAT_CHECK(!tenants_.empty(),
                "Runtime: restore_checkpoint needs the tenants registered "
                "first (the checkpoint holds state, not specs)");
  const auto restore_start = std::chrono::steady_clock::now();
  const std::vector<std::uint8_t> payload = read_checkpoint_file(path);
  CheckpointReader r(payload);
  const std::uint64_t count = r.u64();
  DEEPBAT_CHECK(count == tenants_.size(),
                "Runtime: checkpoint holds " + std::to_string(count) +
                    " tenants, this runtime has " +
                    std::to_string(tenants_.size()));
  r.u64();  // saving runtime's shard count: layout is global, value unused
  start();
  base_stats_ = restore_stats(r);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const TenantSpec& spec = tenants_[i];
    const std::string name = r.str();
    DEEPBAT_CHECK(name == spec.name,
                  "Runtime: checkpoint tenant " + std::to_string(i) +
                      " is '" + name + "', expected '" + spec.name + "'");
    const std::uint64_t stream = r.u64();
    DEEPBAT_CHECK(stream == spec.options.fault_stream,
                  "Runtime: checkpoint tenant '" + name +
                      "' has fault stream " + std::to_string(stream) +
                      ", expected " +
                      std::to_string(spec.options.fault_stream));
    shards_[i % shard_count_]->restore_tenant(i / shard_count_, r);
    auto& decisions = runs_[i].decisions;
    decisions.clear();
    const std::uint64_t n_decisions = r.u64();
    DEEPBAT_CHECK(n_decisions <= r.remaining() / 32,
                  "Runtime: checkpoint decision count exceeds payload");
    decisions.reserve(static_cast<std::size_t>(n_decisions));
    for (std::uint64_t k = 0; k < n_decisions; ++k) {
      ControlDecision d;
      d.time = r.f64();
      d.config = restore_config(r);
      decisions.push_back(d);
    }
    const TenantHooks hooks = tenant_hooks(spec);
    hooks.controller->restore_state(r);
    const std::uint8_t observer_kind = r.u8();
    if (hooks.shared) {
      DEEPBAT_CHECK(observer_kind == 1,
                    "Runtime: checkpoint tenant '" + name +
                        "' observer layout does not match this runtime");
    } else if (hooks.observer != nullptr) {
      DEEPBAT_CHECK(observer_kind == 2,
                    "Runtime: checkpoint tenant '" + name +
                        "' observer layout does not match this runtime");
      hooks.observer->restore_state(r);
    } else {
      DEEPBAT_CHECK(observer_kind == 0,
                    "Runtime: checkpoint tenant '" + name +
                        "' was saved with an observer, this runtime has "
                        "none");
    }
  }
  DEEPBAT_CHECK(r.done(),
                "checkpoint: payload carries trailing bytes past the last "
                "tenant");
  for (const auto& shard : shards_) shard->finish_restore();
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("sim.checkpoint.restore").add();
  registry.histogram("sim.checkpoint.restore_seconds")
      .observe(seconds_since(restore_start));
}

}  // namespace deepbat::sim
