#pragma once
// Thin OpenMP wrappers so call sites stay readable and build without OpenMP.
// Follows the Core Guidelines concurrency rules: callers pass a callable that
// owns no shared mutable state; reductions merge thread-local accumulators.
//
// Grain semantics: `grain` is the minimum number of consecutive iterations a
// worker should own. The loop runs serially unless at least two full grains
// of work exist, and the OpenMP schedule hands out chunks of `grain`
// iterations (schedule(static, grain)), so neighbouring indices stay on one
// thread and fork/join overhead is bounded by the caller's cost estimate.
// Callers with cheap per-iteration bodies must pass a large grain (or rely
// on the conservative default); callers whose items are individually
// expensive (simulations, per-config solves) pass grain 1.

#include <cstddef>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace deepbat {

/// Conservative default grain: loops with bodies this cheap only benefit
/// from threads once they are thousands of iterations long.
inline constexpr std::size_t kDefaultGrain = 256;

/// Number of threads a parallel region will use (1 without OpenMP).
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [0, n). `body(i)` must be safe to run concurrently for
/// distinct i. Falls back to a serial loop when OpenMP is unavailable, when
/// fewer than two grains of work exist, or inside an existing parallel
/// region (no nesting).
template <typename Body>
void parallel_for(std::size_t n, Body&& body,
                  std::size_t grain = kDefaultGrain) {
#ifdef _OPENMP
  const std::size_t g = grain == 0 ? 1 : grain;
  if (n >= g * 2 && omp_get_max_threads() > 1 && !omp_in_parallel()) {
    const auto chunk = static_cast<int>(g);
#pragma omp parallel for schedule(static, chunk)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      body(static_cast<std::size_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = 0; i < n; ++i) body(i);
}

/// Map [0, n) -> T with a parallel loop; results land in index order, so no
/// synchronization is needed beyond the fork/join barrier.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                            std::size_t grain = kDefaultGrain) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

}  // namespace deepbat
