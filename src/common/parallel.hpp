#pragma once
// Shared-memory parallelism primitives, two flavours:
//
//  * parallel_for / parallel_map — thin OpenMP wrappers for data-parallel
//    loops inside one call frame (kernels, per-config solves). Callers pass
//    a callable that owns no shared mutable state; reductions merge
//    thread-local accumulators.
//  * WorkerPool — a persistent std::thread pool with task handles, for
//    coarse long-lived units of work (runtime shards, overlapped batched
//    forwards) that OpenMP's fork/join model fits badly. Waiting on a
//    handle HELPS: the blocked thread executes other queued tasks, so tasks
//    may submit tasks and wait on them from inside the pool without
//    deadlock, and a pool of N threads is safe at any nesting depth.
//
// Grain semantics (parallel_for): `grain` is the minimum number of
// consecutive iterations a worker should own. The loop runs serially unless
// at least two full grains of work exist, and the OpenMP schedule hands out
// chunks of `grain` iterations (schedule(static, grain)), so neighbouring
// indices stay on one thread and fork/join overhead is bounded by the
// caller's cost estimate. Callers with cheap per-iteration bodies must pass
// a large grain (or rely on the conservative default); callers whose items
// are individually expensive (simulations, per-config solves) pass grain 1.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace deepbat {

/// Conservative default grain: loops with bodies this cheap only benefit
/// from threads once they are thousands of iterations long.
inline constexpr std::size_t kDefaultGrain = 256;

/// Number of threads a parallel region will use (1 without OpenMP).
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [0, n). `body(i)` must be safe to run concurrently for
/// distinct i. Falls back to a serial loop when OpenMP is unavailable, when
/// fewer than two grains of work exist, or inside an existing parallel
/// region (no nesting).
template <typename Body>
void parallel_for(std::size_t n, Body&& body,
                  std::size_t grain = kDefaultGrain) {
#ifdef _OPENMP
  const std::size_t g = grain == 0 ? 1 : grain;
  if (n >= g * 2 && omp_get_max_threads() > 1 && !omp_in_parallel()) {
    const auto chunk = static_cast<int>(g);
#pragma omp parallel for schedule(static, chunk)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      body(static_cast<std::size_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = 0; i < n; ++i) body(i);
}

/// Map [0, n) -> T with a parallel loop; results land in index order, so no
/// synchronization is needed beyond the fork/join barrier.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                            std::size_t grain = kDefaultGrain) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

// ---------------------------------------------------------- worker pool --

/// Persistent worker pool for coarse tasks. Submission returns a Handle;
/// Handle::wait() blocks until the task ran somewhere — on a pool worker,
/// or on the waiting thread itself (a waiter drains the queue while its
/// task is pending, which is what makes nested submit-then-wait from
/// inside a pool task deadlock-free). Queue transfer gives the usual
/// release/acquire ordering: everything written before submit() is visible
/// to the task, and everything the task wrote is visible after wait().
///
/// Tasks must not outlive the pool; the destructor finishes queued tasks
/// and joins. An exception escaping a task is captured and rethrown by
/// Handle::rethrow() (wait() itself never throws).
class WorkerPool {
  struct Task {
    std::function<void()> fn;
    bool done = false;
    std::exception_ptr error;
  };

  struct State {
    std::mutex mu;
    std::condition_variable work_cv;  // queue grew or pool is stopping
    std::condition_variable done_cv;  // some task completed
    std::deque<std::shared_ptr<Task>> queue;
    bool stop = false;

    /// Pop and run the front task. Called with `lock` held; returns with it
    /// re-held. The task runs unlocked so other submitters/waiters proceed.
    void run_front(std::unique_lock<std::mutex>& lock) {
      const std::shared_ptr<Task> task = std::move(queue.front());
      queue.pop_front();
      lock.unlock();
      try {
        task->fn();
      } catch (...) {
        task->error = std::current_exception();
      }
      task->fn = nullptr;  // release captures eagerly
      lock.lock();
      task->done = true;
      done_cv.notify_all();
    }
  };

 public:
  class Handle {
   public:
    Handle() = default;

    /// Block until the task has run, helping with other queued tasks while
    /// it is pending. No-op on a default-constructed or already-waited
    /// handle. Never throws; the task's exception is held for rethrow().
    void wait() {
      if (task_ == nullptr) return;
      std::unique_lock<std::mutex> lock(state_->mu);
      while (!task_->done) {
        if (!state_->queue.empty()) {
          state_->run_front(lock);
        } else {
          state_->done_cv.wait(lock);
        }
      }
    }

    /// wait(), then rethrow the exception the task exited with (if any).
    void rethrow() {
      wait();
      if (task_ != nullptr && task_->error != nullptr) {
        std::rethrow_exception(std::exchange(task_->error, nullptr));
      }
    }

    bool valid() const { return task_ != nullptr; }

   private:
    friend class WorkerPool;
    Handle(std::shared_ptr<State> state, std::shared_ptr<Task> task)
        : state_(std::move(state)), task_(std::move(task)) {}

    std::shared_ptr<State> state_;
    std::shared_ptr<Task> task_;
  };

  explicit WorkerPool(std::size_t threads)
      : state_(std::make_shared<State>()) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([state = state_] {
        std::unique_lock<std::mutex> lock(state->mu);
        for (;;) {
          state->work_cv.wait(
              lock, [&] { return state->stop || !state->queue.empty(); });
          if (state->queue.empty()) return;  // stop && drained
          state->run_front(lock);
        }
      });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->stop = true;
    }
    state_->work_cv.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  Handle submit(std::function<void()> fn) {
    auto task = std::make_shared<Task>();
    task->fn = std::move(fn);
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->queue.push_back(task);
    }
    state_->work_cv.notify_one();
    return Handle(state_, std::move(task));
  }

 private:
  std::shared_ptr<State> state_;
  std::vector<std::thread> workers_;
};

// ----------------------------------------------------------- work claim --

/// Single-owner claim flag for work stealing over coarse stateful units
/// (runtime shards). A unit's internal state carries NO synchronization of
/// its own; instead, whoever wants to advance the unit must hold its claim:
///
///   if (claim.try_acquire()) { ...touch the unit's state...; claim.release(); }
///
/// try_acquire() is an acquire exchange and release() a release store, so a
/// successful acquire happens-after every write the previous holder made
/// before releasing — the unit's plain (unsynchronized) state is handed
/// from executor to executor with the claim, and its operations run in a
/// single serial order even though the executing thread changes. That
/// serial order is what keeps work-stolen runs bit-identical to static
/// schedules (DESIGN.md §15).
class ShardClaim {
 public:
  /// True when the caller now owns the unit (was unclaimed).
  bool try_acquire() noexcept {
    // Cheap relaxed peek first: stealing executors scan every shard per
    // round, and most scans hit shards already claimed by their home
    // executor — don't bounce the cache line with an exchange for those.
    if (claimed_.load(std::memory_order_relaxed)) return false;
    return !claimed_.exchange(true, std::memory_order_acquire);
  }

  void release() noexcept { claimed_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> claimed_{false};
};

}  // namespace deepbat
