#pragma once
// Thin OpenMP wrappers so call sites stay readable and build without OpenMP.
// Follows the Core Guidelines concurrency rules: callers pass a callable that
// owns no shared mutable state; reductions merge thread-local accumulators.

#include <cstddef>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace deepbat {

/// Number of threads a parallel region will use (1 without OpenMP).
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [0, n). `body(i)` must be safe to run concurrently for
/// distinct i. Falls back to a serial loop when OpenMP is unavailable or the
/// trip count is tiny.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 1) {
#ifdef _OPENMP
  if (n >= grain * 2 && omp_get_max_threads() > 1 && !omp_in_parallel()) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      body(static_cast<std::size_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = 0; i < n; ++i) body(i);
}

/// Map [0, n) -> T with a parallel loop; results land in index order, so no
/// synchronization is needed beyond the fork/join barrier.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 1) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

}  // namespace deepbat
