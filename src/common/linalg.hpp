#pragma once
// Small dense double-precision matrices for the Markovian-arrival-process
// machinery: moment formulas need 2x2 inverses and products; the BATCH
// analytic engine and its tests use the matrix exponential. Not a general
// BLAS — dimensions here are tiny (order of the MAP, or 2*B for the batch
// phase process), so clarity beats blocking.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace deepbat {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double s) const;

  Matrix transpose() const;

  /// Inverse via Gauss-Jordan with partial pivoting. Throws on singularity.
  Matrix inverse() const;

  /// Solve A x = b (square A). Throws on singularity.
  std::vector<double> solve(std::span<const double> b) const;

  /// Max-abs norm.
  double max_abs() const;

  /// Matrix exponential exp(A) via scaling-and-squaring with a Taylor
  /// series on the scaled matrix — adequate for the modest dimensions and
  /// conditioning of CTMC generators.
  Matrix expm() const;

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Left multiply: (row vector v) * A.
std::vector<double> vec_mat(std::span<const double> v, const Matrix& a);

/// Right multiply: A * (column vector v).
std::vector<double> mat_vec(const Matrix& a, std::span<const double> v);

/// Stationary distribution pi of an irreducible stochastic matrix P
/// (pi P = pi, pi 1 = 1) via the linear system.
std::vector<double> stationary_distribution(const Matrix& p);

/// Stationary distribution of an irreducible CTMC generator Q
/// (pi Q = 0, pi 1 = 1).
std::vector<double> ctmc_stationary(const Matrix& q);

}  // namespace deepbat
