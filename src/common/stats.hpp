#pragma once
// Descriptive statistics used across workload characterization, the
// simulator's latency reporting, and model evaluation.

#include <cstddef>
#include <span>
#include <vector>

namespace deepbat {

/// Streaming mean/variance accumulator (Welford). Numerically stable and
/// mergeable, so it can be used from parallel reductions.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 on empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

/// Squared coefficient of variation (variance / mean^2); 0 on degenerate
/// input. SCV = 1 for exponential inter-arrivals, > 1 indicates burstiness.
double scv(std::span<const double> xs);

/// Lag-k sample autocorrelation; 0 when undefined.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Index of dispersion for intervals:
///   IDI = SCV * (1 + 2 * sum_{k=1..max_lag} rho_k)
/// This is the paper's Fig. 5 burstiness metric; the sum is truncated at
/// `max_lag` (empirical autocorrelations vanish at high lags).
double index_of_dispersion(std::span<const double> interarrivals,
                           std::size_t max_lag = 100);

/// Empirical quantile with linear interpolation between order statistics
/// (type-7 / numpy default). `q` in [0, 1]. Sorts a copy of the input.
double quantile(std::span<const double> xs, double q);

/// Quantile on data that is already ascending-sorted (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

/// Several quantiles at once on one sorted copy; `qs` in [0, 1].
std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs);

/// Mean absolute percentage error (%) between predictions and truths.
/// Entries with |truth| < eps are skipped; returns 0 if none remain.
double mape(std::span<const double> predicted, std::span<const double> truth,
            double eps = 1e-12);

/// Empirical CDF value P(X <= x) of a sorted sample.
double ecdf_sorted(std::span<const double> sorted, double x);

/// Histogram of `xs` into `bins` equal-width buckets over [lo, hi].
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

}  // namespace deepbat
