#pragma once
// Error-handling primitives shared by every DeepBAT module.
//
// The library reports contract violations (bad shapes, invalid configs,
// malformed files) via `deepbat::Error`, raised through the DEEPBAT_CHECK
// macro so that messages carry the failing expression and source location.

#include <stdexcept>
#include <string>

namespace deepbat {

/// Exception type thrown by all DeepBAT components on contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace deepbat

/// Check `cond`; on failure throw deepbat::Error with expression + location.
/// The second argument is a message expression (anything streamable into a
/// std::string via operator+ is overkill here; we accept a std::string).
#define DEEPBAT_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::deepbat::detail::raise_check_failure(#cond, __FILE__, __LINE__,   \
                                             (msg));                     \
    }                                                                     \
  } while (false)

/// Unconditional failure with message.
#define DEEPBAT_FAIL(msg)                                                 \
  ::deepbat::detail::raise_check_failure("failure", __FILE__, __LINE__, (msg))
