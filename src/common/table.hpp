#pragma once
// Aligned-table and CSV emitters used by every bench binary to print the
// rows/series corresponding to the paper's tables and figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace deepbat {

/// Column-aligned text table. Collects string cells, pads on output.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Render with 2-space column gaps and a dashed rule under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (no quoting of commas; callers use plain cells).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double value, int precision = 4);

/// Format as scientific notation (for costs around 1e-7 $/request).
std::string fmt_sci(double value, int precision = 3);

/// Section banner for bench output ("== Fig. 6: ... ==").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace deepbat
