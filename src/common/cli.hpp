#pragma once
// Minimal command-line flag parser for examples and bench binaries.
// Supports `--name value` and `--name=value`; unknown flags are an error so
// typos surface immediately.

#include <cstdint>
#include <map>
#include <string>

namespace deepbat {

class CliFlags {
 public:
  /// Parse argv. Throws deepbat::Error on malformed input.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Error out unless every provided flag is in `allowed` (comma-separated
  /// documentation string is the caller's problem; this takes a set-like
  /// initializer).
  void check_known(std::initializer_list<const char*> allowed) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace deepbat
