#pragma once
// Derivative-free minimization (Nelder-Mead) used by the MAP fitting
// pipeline. Small, dependency-free, deterministic.

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"

namespace deepbat {

struct NelderMeadOptions {
  int max_iterations = 2000;
  double initial_step = 0.5;
  double tolerance = 1e-10;  // simplex spread in function value
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimize `f` starting from `x0`.
inline NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opts = {}) {
  DEEPBAT_CHECK(!x0.empty(), "nelder_mead: empty start point");
  const std::size_t n = x0.size();
  // Build initial simplex.
  std::vector<std::vector<double>> simplex;
  simplex.push_back(x0);
  for (std::size_t i = 0; i < n; ++i) {
    auto v = x0;
    v[i] += opts.initial_step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values;
  values.reserve(n + 1);
  for (const auto& v : simplex) values.push_back(f(v));

  auto order = [&] {
    std::vector<std::size_t> idx(simplex.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    std::vector<std::vector<double>> s2;
    std::vector<double> v2;
    for (std::size_t i : idx) {
      s2.push_back(simplex[i]);
      v2.push_back(values[i]);
    }
    simplex = std::move(s2);
    values = std::move(v2);
  };

  // Convergence needs both a small function-value spread AND a small
  // simplex: symmetric objectives can make all vertices equal in value
  // while the simplex still spans the minimum.
  auto simplex_diameter = [&] {
    double d = 0.0;
    for (std::size_t i = 1; i < simplex.size(); ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        d = std::max(d, std::abs(simplex[i][j] - simplex[0][j]));
      }
    }
    return d;
  };

  NelderMeadResult result;
  int iter = 0;
  for (; iter < opts.max_iterations; ++iter) {
    order();
    if (values.back() - values.front() < opts.tolerance &&
        simplex_diameter() < std::sqrt(opts.tolerance)) {
      result.converged = true;
      break;
    }
    // Centroid of all but worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto affine = [&](double t) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + t * (simplex[n][j] - centroid[j]);
      }
      return p;
    };

    const auto reflected = affine(-1.0);
    const double fr = f(reflected);
    if (fr < values[0]) {
      const auto expanded = affine(-2.0);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[n] = expanded;
        values[n] = fe;
      } else {
        simplex[n] = reflected;
        values[n] = fr;
      }
    } else if (fr < values[n - 1]) {
      simplex[n] = reflected;
      values[n] = fr;
    } else {
      const auto contracted = affine(0.5);
      const double fc = f(contracted);
      if (fc < values[n]) {
        simplex[n] = contracted;
        values[n] = fc;
      } else {
        // Shrink toward best.
        for (std::size_t i = 1; i <= n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] = simplex[0][j] + 0.5 * (simplex[i][j] - simplex[0][j]);
          }
          values[i] = f(simplex[i]);
        }
      }
    }
  }
  order();
  result.x = simplex[0];
  result.value = values[0];
  result.iterations = iter;
  return result;
}

}  // namespace deepbat
