#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace deepbat {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DEEPBAT_CHECK(arg.rfind("--", 0) == 0, "flags must start with --: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void CliFlags::check_known(std::initializer_list<const char*> allowed) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&](const char* a) { return key == a; });
    DEEPBAT_CHECK(known, "unknown flag --" + key);
  }
}

}  // namespace deepbat
