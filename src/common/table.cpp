#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace deepbat {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DEEPBAT_CHECK(!header_.empty(), "Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  DEEPBAT_CHECK(cells.size() == header_.size(),
                "Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace deepbat
