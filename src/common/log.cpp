#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace deepbat {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("DEEPBAT_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_write(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_mutex);
  std::cerr << "[deepbat:" << level_name(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace deepbat
