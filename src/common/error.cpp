#include "common/error.hpp"

#include <sstream>

namespace deepbat::detail {

void raise_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "DEEPBAT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace deepbat::detail
