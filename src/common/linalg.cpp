#include "common/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace deepbat {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  DEEPBAT_CHECK(data_.size() == rows * cols, "Matrix: data size mismatch");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  DEEPBAT_CHECK(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  DEEPBAT_CHECK(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::operator+(const Matrix& other) const {
  DEEPBAT_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "Matrix+: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  DEEPBAT_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "Matrix-: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  DEEPBAT_CHECK(cols_ == other.rows_, "Matrix*: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.data_[i * other.cols_ + j] += a * other.data_[k * other.cols_ + j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::inverse() const {
  DEEPBAT_CHECK(rows_ == cols_, "inverse: matrix must be square");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    DEEPBAT_CHECK(std::abs(a(pivot, col)) > 1e-300,
                  "inverse: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(col, c), a(pivot, c));
        std::swap(inv(col, c), inv(pivot, c));
      }
    }
    const double d = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

std::vector<double> Matrix::solve(std::span<const double> b) const {
  DEEPBAT_CHECK(rows_ == cols_ && b.size() == rows_, "solve: bad dimensions");
  return mat_vec(inverse(), b);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

Matrix Matrix::expm() const {
  DEEPBAT_CHECK(rows_ == cols_, "expm: matrix must be square");
  // Scale so ||A/2^s|| <= 0.5, run the Taylor series to convergence, then
  // square s times.
  const double norm = max_abs() * static_cast<double>(rows_);
  int s = 0;
  double scaled = norm;
  while (scaled > 0.5) {
    scaled /= 2.0;
    ++s;
  }
  Matrix a = *this * std::pow(2.0, -s);
  Matrix result = identity(rows_);
  Matrix term = identity(rows_);
  for (int k = 1; k <= 30; ++k) {
    term = term * a * (1.0 / static_cast<double>(k));
    result = result + term;
    if (term.max_abs() < 1e-16) break;
  }
  for (int i = 0; i < s; ++i) result = result * result;
  return result;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c) << (c + 1 < cols_ ? ", " : "");
    }
    os << (r + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

std::vector<double> vec_mat(std::span<const double> v, const Matrix& a) {
  DEEPBAT_CHECK(v.size() == a.rows(), "vec_mat: dimension mismatch");
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double x = v[r];
    if (x == 0.0) continue;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out[c] += x * a(r, c);
    }
  }
  return out;
}

std::vector<double> mat_vec(const Matrix& a, std::span<const double> v) {
  DEEPBAT_CHECK(v.size() == a.cols(), "mat_vec: dimension mismatch");
  std::vector<double> out(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      s += a(r, c) * v[c];
    }
    out[r] = s;
  }
  return out;
}

std::vector<double> stationary_distribution(const Matrix& p) {
  DEEPBAT_CHECK(p.rows() == p.cols() && p.rows() > 0,
                "stationary_distribution: bad matrix");
  // Solve pi (P - I) = 0 with sum(pi) = 1: replace last column by ones.
  const std::size_t n = p.rows();
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = p(r, c) - (r == c ? 1.0 : 0.0);
    }
  }
  // System: pi A = 0 -> A^T pi^T = 0; overwrite last equation with sum = 1.
  Matrix at = a.transpose();
  for (std::size_t c = 0; c < n; ++c) at(n - 1, c) = 1.0;
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  auto pi = at.solve(b);
  for (double& x : pi) x = std::max(x, 0.0);  // clean tiny negatives
  double total = 0.0;
  for (double x : pi) total += x;
  DEEPBAT_CHECK(total > 0.0, "stationary_distribution: degenerate solution");
  for (double& x : pi) x /= total;
  return pi;
}

std::vector<double> ctmc_stationary(const Matrix& q) {
  DEEPBAT_CHECK(q.rows() == q.cols() && q.rows() > 0,
                "ctmc_stationary: bad matrix");
  const std::size_t n = q.rows();
  Matrix qt = q.transpose();
  for (std::size_t c = 0; c < n; ++c) qt(n - 1, c) = 1.0;
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  auto pi = qt.solve(b);
  for (double& x : pi) x = std::max(x, 0.0);
  double total = 0.0;
  for (double x : pi) total += x;
  DEEPBAT_CHECK(total > 0.0, "ctmc_stationary: degenerate solution");
  for (double& x : pi) x /= total;
  return pi;
}

}  // namespace deepbat
