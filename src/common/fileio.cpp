#include "common/fileio.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace deepbat {

void write_file_atomic(const std::string& path, const std::string& content) {
  // The temp file must live on the same filesystem as the target for the
  // rename to be atomic; a sibling suffix guarantees that.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    DEEPBAT_CHECK(os.good(), "write_file_atomic: cannot open " + tmp);
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    os.flush();
    DEEPBAT_CHECK(os.good(), "write_file_atomic: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    DEEPBAT_FAIL("write_file_atomic: cannot rename " + tmp + " -> " + path);
  }
}

}  // namespace deepbat
