#pragma once
// Shared config-grid selection: both optimizers (DeepBAT's surrogate-driven
// Policy stage and BATCH's analytic solver) pick a configuration the same
// way — keep the candidates whose predicted latency meets the SLO, take the
// cheapest, and fall back to the lowest-latency candidate when nothing is
// feasible. The scan itself lives here so the two systems cannot drift.

#include <cstddef>

#include "common/error.hpp"

namespace deepbat {

struct GridSearchResult {
  /// Index of the selected candidate: the cheapest feasible one, or the
  /// fastest overall when nothing is feasible.
  std::size_t best = 0;
  /// Index of the candidate with the smallest latency metric (the fallback).
  std::size_t fastest = 0;
  bool any_feasible = false;
};

/// Scan `count` candidates. `latency(i)` is the SLO metric of candidate i,
/// `cost(i)` its objective, `feasible(i)` whether it meets the (possibly
/// tightened) SLO. Ties keep the earliest index, matching the historical
/// behaviour of both optimizers (the grid enumeration order is part of the
/// reproduction's determinism contract).
template <typename FeasibleFn, typename LatencyFn, typename CostFn>
GridSearchResult grid_search_argmin(std::size_t count, FeasibleFn&& feasible,
                                    LatencyFn&& latency, CostFn&& cost) {
  DEEPBAT_CHECK(count > 0, "grid_search_argmin: no candidates");
  GridSearchResult result;
  bool have_best = false;
  double best_cost = 0.0;
  double fastest_latency = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double lat = latency(i);
    if (i == 0 || lat < fastest_latency) {
      result.fastest = i;
      fastest_latency = lat;
    }
    if (!feasible(i)) continue;
    result.any_feasible = true;
    const double c = cost(i);
    if (!have_best || c < best_cost) {
      result.best = i;
      best_cost = c;
      have_best = true;
    }
  }
  if (!have_best) result.best = result.fastest;
  return result;
}

}  // namespace deepbat
