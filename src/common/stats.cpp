#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace deepbat {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double scv(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return variance(xs) / (m * m);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (lag == 0) return 1.0;
  if (xs.size() <= lag + 1) return 0.0;
  const double m = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - m) * (xs[i] - m);
  }
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / den;
}

double index_of_dispersion(std::span<const double> interarrivals,
                           std::size_t max_lag) {
  if (interarrivals.size() < 3) return 1.0;
  const double c2 = scv(interarrivals);
  double rho_sum = 0.0;
  const std::size_t limit =
      std::min(max_lag, interarrivals.size() / 2 > 0 ? interarrivals.size() / 2 - 1
                                                     : std::size_t{0});
  for (std::size_t k = 1; k <= limit; ++k) {
    rho_sum += autocorrelation(interarrivals, k);
  }
  return c2 * (1.0 + 2.0 * rho_sum);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  DEEPBAT_CHECK(!sorted.empty(), "quantile: empty sample");
  DEEPBAT_CHECK(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(copy, q));
  return out;
}

double mape(std::span<const double> predicted, std::span<const double> truth,
            double eps) {
  DEEPBAT_CHECK(predicted.size() == truth.size(), "mape: size mismatch");
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    sum += std::abs(predicted[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n ? 100.0 * sum / static_cast<double>(n) : 0.0;
}

double ecdf_sorted(std::span<const double> sorted, double x) {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  DEEPBAT_CHECK(bins > 0, "histogram: zero bins");
  DEEPBAT_CHECK(hi > lo, "histogram: empty range");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    if (x < lo || x >= hi) continue;
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (idx >= bins) idx = bins - 1;
    ++counts[idx];
  }
  return counts;
}

}  // namespace deepbat
