#pragma once
// MonotonicArena — a chunked bump allocator for per-shard tenant state
// (DESIGN.md §15). Registering a million tenants through the general-purpose
// heap costs one malloc per simulator, per tenant record, per scratch
// buffer — and the resulting allocations interleave across shards, so the
// hot tick loop chases pointers all over the heap. A shard instead carves
// its tenant state out of one arena: allocation is a pointer bump inside a
// geometrically-growing chunk list, objects of one shard stay contiguous
// (cache locality on the tick path), and teardown is one walk of the
// registered destructors plus a handful of chunk frees.
//
// Not thread-safe by design: an arena belongs to exactly one RuntimeShard,
// and a shard's state is only ever touched by the thread currently holding
// the shard's claim (common/parallel.hpp ShardClaim hands the memory view
// over with acquire/release ordering).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace deepbat {

class MonotonicArena {
 public:
  /// `chunk_bytes` is the granularity fresh blocks are requested at;
  /// oversized allocations get a dedicated chunk of their exact size.
  explicit MonotonicArena(std::size_t chunk_bytes = std::size_t{1} << 16)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  ~MonotonicArena() { release(); }

  /// Raw aligned storage; never freed individually. `align` must be a
  /// power of two.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t head = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunks_.empty() || head + bytes > chunks_.back().size) {
      grow(bytes + align);
      head = (cursor_ + (align - 1)) & ~(align - 1);
    }
    void* p = chunks_.back().data.get() + head;
    cursor_ = head + bytes;
    used_ += bytes;
    return p;
  }

  /// Construct a T in the arena. Non-trivially-destructible objects are
  /// registered and destroyed (in reverse construction order) by release()
  /// or the arena's destructor.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    T* obj = new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(
          {obj, [](void* o) { static_cast<T*>(o)->~T(); }});
    }
    return obj;
  }

  /// Uninitialized array of trivially-destructible Ts.
  template <typename T>
  T* create_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays must not need destructors");
    return static_cast<T*>(allocate(sizeof(T) * n, alignof(T)));
  }

  /// Bytes handed out / bytes held in chunks.
  std::size_t bytes_used() const { return used_; }
  std::size_t bytes_reserved() const { return reserved_; }

  /// Destroy every registered object (reverse order) and free all chunks.
  void release() {
    for (std::size_t i = dtors_.size(); i > 0; --i) {
      dtors_[i - 1].destroy(dtors_[i - 1].object);
    }
    dtors_.clear();
    chunks_.clear();
    cursor_ = 0;
    used_ = 0;
    reserved_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  struct Dtor {
    void* object;
    void (*destroy)(void*);
  };

  void grow(std::size_t at_least) {
    // Double the chunk size as the arena grows so a million-tenant shard
    // allocates O(log bytes) chunks, not O(bytes / chunk).
    std::size_t size = chunk_bytes_ << (chunks_.size() < 16
                                            ? chunks_.size()
                                            : std::size_t{16});
    if (size < at_least) size = at_least;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
    cursor_ = 0;
  }

  std::size_t chunk_bytes_;
  std::size_t cursor_ = 0;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::vector<Chunk> chunks_;
  std::vector<Dtor> dtors_;
};

}  // namespace deepbat
