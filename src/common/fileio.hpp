#pragma once
// Atomic file writes. Every report/snapshot writer in the repo (BENCH_*.json,
// --metrics dumps, serialized weights, runtime checkpoints) goes through
// write_file_atomic so a crash or kill mid-write never leaves a truncated
// file behind for the next reader to choke on: the content lands in a
// sibling temp file first and is renamed over the target only once fully
// written (rename(2) is atomic within a filesystem).

#include <string>

namespace deepbat {

/// Write `content` to `path` via a write-temp-then-rename. Throws
/// deepbat::Error when the temp file cannot be created, written, or renamed.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace deepbat
