#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace deepbat {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DEEPBAT_CHECK(lo <= hi, "uniform_int: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  DEEPBAT_CHECK(rate > 0.0, "exponential: rate must be positive");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  DEEPBAT_CHECK(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for trace
  // synthesis at high rates.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(std::llround(x));
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  DEEPBAT_CHECK(!weights.empty(), "categorical: no weights");
  double total = 0.0;
  for (double w : weights) {
    DEEPBAT_CHECK(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  DEEPBAT_CHECK(total > 0.0, "categorical: all weights zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace deepbat
