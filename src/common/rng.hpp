#pragma once
// Deterministic random-number generation.
//
// Every stochastic component in DeepBAT (trace synthesis, MAP simulation,
// dataset sampling, weight init, dropout) draws from an explicitly seeded
// `Rng`. Two instances with the same seed produce identical streams on all
// platforms, which keeps tests and benchmark tables reproducible.

#include <cstdint>
#include <vector>

namespace deepbat {

/// SplitMix64 — used to expand a user seed into xoshiro state.
struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next();
};

/// xoshiro256** PRNG wrapped with the distribution helpers DeepBAT needs.
/// Cheaper and more portable than std::mt19937_64 + std::*_distribution
/// (whose outputs are implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second sample).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large means).
  std::int64_t poisson(double mean);

  /// Pick index in [0, weights.size()) proportionally to weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child stream (for per-worker determinism).
  Rng split();

  /// Complete generator state (xoshiro words + the Box-Muller cache) for
  /// checkpoint/restore: set_state(state()) resumes the exact stream.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.cached_normal = cached_normal_;
    st.has_cached_normal = has_cached_normal_;
    return st;
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace deepbat
