#pragma once
// Tiny leveled logger. Defaults to `info`; raise/lower via set_log_level or
// the DEEPBAT_LOG environment variable (trace|debug|info|warn|error|off).
// Thread-safe: each message is formatted into one string and written with a
// single mutex-guarded call.

#include <sstream>
#include <string>

namespace deepbat {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

}  // namespace deepbat

#define DEEPBAT_LOG_AT(level, expr)                                    \
  do {                                                                 \
    if ((level) >= ::deepbat::log_level()) {                           \
      std::ostringstream os_;                                          \
      os_ << expr;                                                     \
      ::deepbat::detail::log_write((level), os_.str());                \
    }                                                                  \
  } while (false)

#define LOG_DEBUG(expr) DEEPBAT_LOG_AT(::deepbat::LogLevel::kDebug, expr)
#define LOG_INFO(expr) DEEPBAT_LOG_AT(::deepbat::LogLevel::kInfo, expr)
#define LOG_WARN(expr) DEEPBAT_LOG_AT(::deepbat::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) DEEPBAT_LOG_AT(::deepbat::LogLevel::kError, expr)
