#pragma once
// BATCH's analytic engine (Ali et al., SC'20), reimplemented: given a fitted
// MAP and a candidate configuration (M, B, T), compute the per-request
// latency distribution and expected cost per request in closed form —
// without simulating the workload.
//
// Mathematical model. A batch opens when a request arrives into an empty
// buffer; the MAP phase at that instant follows the arrival-stationary
// vector. Additional arrivals accumulate according to the MAP; the batch
// dispatches at min(T, time of the (B-1)-th additional arrival). A request's
// latency is (dispatch - its arrival) + s(M, K) with K the realized batch
// size. The (count, phase) process is a level-structured transient CTMC
// (levels 0..B-2, absorbing at level B-1), whose Kolmogorov equations we
// integrate on a time grid (RK4 with uniformization-controlled sub-steps —
// numerically equivalent to the matrix exponentials BATCH evaluates, see
// the expm cross-check in tests). From the transient solution we obtain:
//   * the dispatch-by-arrival probability and the timeout batch-size law,
//   * per-arrival-index waiting-time laws via phase-type absorption CDFs,
// and assemble the exact per-request latency CDF (one documented
// approximation: the batch size of a timeout batch is taken from the
// unconditional law restricted to sizes consistent with the tagged
// request's index).

#include <span>

#include "lambda/model.hpp"
#include "workload/map_process.hpp"

namespace deepbat::batchlib {

struct AnalyticOptions {
  std::size_t grid_points = 192;   // time resolution over [0, T]
  double uniformization_safety = 0.2;  // max generator-rate * substep
  std::size_t bisection_iterations = 44;
};

struct AnalyticEvaluation {
  lambda::Config config;
  double latency_percentile = 0.0;
  double cost_per_request = 0.0;
  double expected_batch_size = 0.0;
  double p_full_batch = 0.0;  // probability the batch filled before timeout
  bool feasible = false;
};

class BatchAnalyticModel {
 public:
  BatchAnalyticModel(workload::Map map, const lambda::LambdaModel& lambda_model,
                     AnalyticOptions options = {});

  /// Latency percentile (e.g. 0.95) and cost for one configuration.
  AnalyticEvaluation evaluate(const lambda::Config& config, double percentile,
                              double slo_s) const;

  /// Per-request latency CDF at time t for one configuration.
  double latency_cdf(const lambda::Config& config, double t) const;

  const workload::Map& map() const { return map_; }

 private:
  struct Transient;  // grid solution of the counting process

  Transient solve_counting(const lambda::Config& config) const;

  workload::Map map_;
  const lambda::LambdaModel& lambda_;
  AnalyticOptions options_;
};

/// Grid search under the analytic model: minimize cost subject to the SLO
/// (Eq. 10), exactly BATCH's optimizer. Infeasible-everywhere falls back to
/// the config with the smallest latency percentile.
struct AnalyticSearchResult {
  AnalyticEvaluation best;
  bool any_feasible = false;
  double solve_seconds = 0.0;  // wall-clock of the whole grid scan
};

AnalyticSearchResult analytic_grid_search(const BatchAnalyticModel& model,
                                          const lambda::ConfigGrid& grid,
                                          double slo_s,
                                          double percentile = 0.95);

}  // namespace deepbat::batchlib
