#include "batchlib/analytic.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/grid_search.hpp"
#include "common/parallel.hpp"

namespace deepbat::batchlib {

namespace {

/// Alive-state layout: index(level n, phase i) = n * m + i, levels
/// 0..B-2 ("n additional arrivals so far, batch still open").
struct LevelGenerator {
  const Matrix& d0;
  const Matrix& d1;
  std::size_t m;
  std::size_t levels;

  /// dp = p * Q restricted to alive states.
  void apply(std::span<const double> p, std::span<double> dp) const {
    std::fill(dp.begin(), dp.end(), 0.0);
    for (std::size_t n = 0; n < levels; ++n) {
      const double* pn = p.data() + n * m;
      double* dn = dp.data() + n * m;
      for (std::size_t j = 0; j < m; ++j) {
        const double pj = pn[j];
        if (pj == 0.0) continue;
        for (std::size_t i = 0; i < m; ++i) {
          dn[i] += pj * d0(j, i);
        }
        if (n + 1 < levels) {
          double* dup = dp.data() + (n + 1) * m;
          for (std::size_t i = 0; i < m; ++i) {
            dup[i] += pj * d1(j, i);
          }
        }
      }
    }
  }
};

/// RK4 transient integration of p' = p Q on a uniform grid over [0, T].
/// Sub-steps per grid cell keep (max exit rate * dt) below `safety` — the
/// same stability control uniformization applies.
std::vector<std::vector<double>> integrate(const LevelGenerator& gen,
                                           std::vector<double> p0, double T,
                                           std::size_t grid_points,
                                           double safety) {
  const std::size_t dim = p0.size();
  double max_rate = 0.0;
  for (std::size_t i = 0; i < gen.m; ++i) {
    max_rate = std::max(max_rate, -gen.d0(i, i));
  }
  const double dt_grid = T / static_cast<double>(grid_points);
  // Accuracy wants (max_rate * h) <= safety; cap the resulting cost so a
  // pathologically fast MAP phase cannot demand millions of sub-steps (its
  // transients equilibrate within a cell anyway). Never go below the RK4
  // stability bound (max_rate * h) <= 2.5, which is non-negotiable.
  constexpr std::size_t kAccuracyCap = 512;
  const auto accuracy_steps = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(max_rate * dt_grid / safety)), 1,
      kAccuracyCap);
  const auto stability_steps = static_cast<std::size_t>(
      std::ceil(max_rate * dt_grid / 2.5));
  const std::size_t substeps = std::max({accuracy_steps, stability_steps,
                                         std::size_t{1}});
  const double h = dt_grid / static_cast<double>(substeps);

  std::vector<std::vector<double>> out;
  out.reserve(grid_points + 1);
  out.push_back(p0);
  std::vector<double> k1(dim), k2(dim), k3(dim), k4(dim), tmp(dim);
  std::vector<double> p = std::move(p0);
  for (std::size_t g = 0; g < grid_points; ++g) {
    for (std::size_t s = 0; s < substeps; ++s) {
      gen.apply(p, k1);
      for (std::size_t i = 0; i < dim; ++i) tmp[i] = p[i] + 0.5 * h * k1[i];
      gen.apply(tmp, k2);
      for (std::size_t i = 0; i < dim; ++i) tmp[i] = p[i] + 0.5 * h * k2[i];
      gen.apply(tmp, k3);
      for (std::size_t i = 0; i < dim; ++i) tmp[i] = p[i] + h * k3[i];
      gen.apply(tmp, k4);
      for (std::size_t i = 0; i < dim; ++i) {
        p[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        p[i] = std::max(p[i], 0.0);
      }
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace

struct BatchAnalyticModel::Transient {
  std::size_t m = 0;
  std::int64_t B = 0;
  double T = 0.0;
  double dt = 0.0;
  std::size_t grid = 0;
  /// Opener run: p[k][n*m+i], initial mass pi_a at level 0.
  std::vector<std::vector<double>> p;
  /// Per-start-phase runs for the absorption CDFs G_{r,i}.
  std::vector<std::vector<std::vector<double>>> phase_runs;
  /// Prefix sums over levels: below_cum[i][k][r] = P(level < r at grid k |
  /// start phase i), r = 0..B-1. Precomputed so each CDF probe is O(1).
  std::vector<std::vector<std::vector<double>>> below_cum;

  // ---- assembled quantities (filled by BatchAnalyticModel) ----
  std::vector<double> timeout_law;   // p_n(T), n = 0..B-2
  std::vector<double> timeout_cum;   // prefix sums of timeout_law
  double p_full = 0.0;               // batch filled before timeout
  double expected_k = 0.0;           // E[batch size]
  std::vector<double> service_by_k;  // s(M, k), k = 0..B (increasing in k)
  std::vector<double> pia;           // arrival-stationary phase distribution

  /// Sum of timeout_law[n] for n in [lo, hi] (inclusive, clamped).
  double timeout_mass(std::int64_t lo, std::int64_t hi) const {
    hi = std::min<std::int64_t>(hi, B - 2);
    if (hi < lo) return 0.0;
    const double upper = timeout_cum[static_cast<std::size_t>(hi)];
    const double lower =
        lo > 0 ? timeout_cum[static_cast<std::size_t>(lo - 1)] : 0.0;
    return upper - lower;
  }

  /// Largest n such that service_by_k[n + 1] <= budget (or lo - 1 if none).
  std::int64_t max_size_within(double budget) const {
    // service_by_k is strictly increasing in k; find last k with s(k) <=
    // budget, n = k - 1.
    const auto it = std::upper_bound(service_by_k.begin() + 1,
                                     service_by_k.end(), budget);
    return static_cast<std::int64_t>(it - service_by_k.begin()) - 2;
  }

  /// P(fewer than r additional arrivals by grid time k | start phase i).
  double below_level(std::size_t i, std::size_t k, std::int64_t r) const {
    const auto& cum = below_cum[i][k];
    const auto idx = std::min(static_cast<std::size_t>(r), cum.size() - 1);
    return cum[idx];
  }

  /// Absorption CDF G_{r,i}(w) = P(r-th additional arrival <= w), linear
  /// interpolation on the grid; w < 0 gives 0, w > T clamps to T (by then
  /// absorption beyond level r can no longer happen within this batch).
  double absorption_cdf(std::size_t i, std::int64_t r, double w) const {
    if (w <= 0.0) return 0.0;
    const double pos = std::min(w, T) / dt;
    const auto k0 = std::min(static_cast<std::size_t>(pos), grid);
    const std::size_t k1 = std::min(k0 + 1, grid);
    const double frac = std::min(pos - static_cast<double>(k0), 1.0);
    const double g0 = 1.0 - below_level(i, k0, r);
    const double g1 = 1.0 - below_level(i, k1, r);
    return g0 + frac * (g1 - g0);
  }

  /// Per-request latency CDF at x (see the header for the derivation).
  double cdf(const Matrix& d1, double x) const {
    if (expected_k <= 0.0) return 0.0;
    const double service_full = service_by_k[static_cast<std::size_t>(B)];
    double total = 0.0;
    // ---- opener (request index 0, r = B-1 remaining arrivals) ----
    for (std::size_t i = 0; i < m; ++i) {
      total += pia[i] * absorption_cdf(i, B - 1, x - service_full);
    }
    total += timeout_mass(0, max_size_within(x - T));
    // ---- request index j = 1..B-2 (arrival flux into level j) ----
    for (std::int64_t j = 1; j <= B - 2; ++j) {
      const std::int64_t r = B - 1 - j;
      const double tail = timeout_mass(j, B - 2);
      for (std::size_t k = 0; k <= grid; ++k) {
        const double s = static_cast<double>(k) * dt;
        const double w = (k == 0 || k == grid) ? 0.5 * dt : dt;
        const auto& state = p[k];
        for (std::size_t i = 0; i < m; ++i) {
          double flux = 0.0;
          for (std::size_t ph = 0; ph < m; ++ph) {
            flux +=
                state[static_cast<std::size_t>(j - 1) * m + ph] * d1(ph, i);
          }
          if (flux == 0.0) continue;
          const double weight = flux * w;
          const double remaining = T - s;
          // Full batch: wait = R <= remaining, latency = R + s(B).
          total += weight * absorption_cdf(
                                i, r, std::min(x - service_full, remaining));
          // Timeout: wait = remaining; size law restricted to n >= j.
          const double p_to = 1.0 - absorption_cdf(i, r, remaining);
          if (p_to > 0.0 && tail > 0.0) {
            const double hit =
                timeout_mass(j, max_size_within(x - remaining));
            total += weight * p_to * hit / tail;
          }
        }
      }
    }
    // ---- request index B-1: triggers dispatch, latency = s(B) ----
    if (service_full <= x) {
      total += p_full;
    }
    return total / expected_k;
  }
};

BatchAnalyticModel::BatchAnalyticModel(workload::Map map,
                                       const lambda::LambdaModel& lambda_model,
                                       AnalyticOptions options)
    : map_(std::move(map)), lambda_(lambda_model), options_(options) {
  DEEPBAT_CHECK(options_.grid_points >= 8, "AnalyticOptions: grid too coarse");
}

BatchAnalyticModel::Transient BatchAnalyticModel::solve_counting(
    const lambda::Config& config) const {
  const std::size_t m = map_.order();
  const auto B = config.batch_size;
  DEEPBAT_CHECK(B >= 2 && config.timeout_s > 0.0,
                "solve_counting: degenerate config handled by caller");
  Transient tr;
  tr.m = m;
  tr.B = B;
  tr.T = config.timeout_s;
  tr.grid = options_.grid_points;
  tr.dt = tr.T / static_cast<double>(tr.grid);

  const LevelGenerator gen{map_.d0(), map_.d1(), m,
                           static_cast<std::size_t>(B - 1)};
  const std::size_t dim = static_cast<std::size_t>(B - 1) * m;

  tr.pia = map_.arrival_phase_stationary();
  std::vector<double> p0(dim, 0.0);
  for (std::size_t i = 0; i < m; ++i) p0[i] = tr.pia[i];
  tr.p = integrate(gen, std::move(p0), tr.T, tr.grid,
                   options_.uniformization_safety);

  tr.phase_runs.resize(m);
  tr.below_cum.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> e(dim, 0.0);
    e[i] = 1.0;
    tr.phase_runs[i] = integrate(gen, std::move(e), tr.T, tr.grid,
                                 options_.uniformization_safety);
    // Level prefix sums: below_cum[i][k][r] = sum of levels 0..r-1.
    tr.below_cum[i].resize(tr.grid + 1);
    for (std::size_t k = 0; k <= tr.grid; ++k) {
      const auto& state = tr.phase_runs[i][k];
      auto& cum = tr.below_cum[i][k];
      cum.assign(static_cast<std::size_t>(B), 0.0);
      double running_mass = 0.0;
      for (std::int64_t n = 0; n < B - 1; ++n) {
        for (std::size_t ph = 0; ph < m; ++ph) {
          running_mass += state[static_cast<std::size_t>(n) * m + ph];
        }
        cum[static_cast<std::size_t>(n) + 1] = running_mass;
      }
    }
  }

  // Assembled quantities.
  tr.timeout_law.assign(static_cast<std::size_t>(B - 1), 0.0);
  double p_timeout = 0.0;
  for (std::int64_t n = 0; n < B - 1; ++n) {
    double mass = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      mass += tr.p[tr.grid][static_cast<std::size_t>(n) * m + i];
    }
    tr.timeout_law[static_cast<std::size_t>(n)] = mass;
    p_timeout += mass;
  }
  tr.p_full = std::max(0.0, 1.0 - p_timeout);
  tr.expected_k = static_cast<double>(B) * tr.p_full;
  for (std::int64_t n = 0; n < B - 1; ++n) {
    tr.expected_k += static_cast<double>(n + 1) *
                     tr.timeout_law[static_cast<std::size_t>(n)];
  }
  tr.timeout_cum.resize(tr.timeout_law.size());
  double running = 0.0;
  for (std::size_t n = 0; n < tr.timeout_law.size(); ++n) {
    running += tr.timeout_law[n];
    tr.timeout_cum[n] = running;
  }
  tr.service_by_k.assign(static_cast<std::size_t>(B) + 1, 0.0);
  for (std::int64_t k = 1; k <= B; ++k) {
    tr.service_by_k[static_cast<std::size_t>(k)] =
        lambda_.service_time(config.memory_mb, k);
  }
  // max_size_within() relies on service_by_k[0] never matching.
  tr.service_by_k[0] = -1.0;
  return tr;
}

double BatchAnalyticModel::latency_cdf(const lambda::Config& config,
                                       double t) const {
  lambda_.validate(config);
  if (config.batch_size == 1 || config.timeout_s <= 0.0) {
    return t >= lambda_.service_time(config.memory_mb, 1) ? 1.0 : 0.0;
  }
  const Transient tr = solve_counting(config);
  return tr.cdf(map_.d1(), t);
}

AnalyticEvaluation BatchAnalyticModel::evaluate(const lambda::Config& config,
                                                double percentile,
                                                double slo_s) const {
  lambda_.validate(config);
  DEEPBAT_CHECK(percentile > 0.0 && percentile < 1.0,
                "evaluate: percentile out of (0, 1)");
  AnalyticEvaluation eval;
  eval.config = config;

  if (config.batch_size == 1 || config.timeout_s <= 0.0) {
    const double service = lambda_.service_time(config.memory_mb, 1);
    eval.latency_percentile = service;
    eval.cost_per_request = lambda_.invocation_cost(config.memory_mb, service);
    eval.expected_batch_size = 1.0;
    eval.p_full_batch = 1.0;
    eval.feasible = eval.latency_percentile <= slo_s;
    return eval;
  }

  const Transient tr = solve_counting(config);
  eval.p_full_batch = tr.p_full;
  eval.expected_batch_size = tr.expected_k;

  // Cost: one invocation per batch; expectation over batch outcomes,
  // divided by expected requests per batch.
  const auto B = config.batch_size;
  double invocation_cost =
      tr.p_full * lambda_.invocation_cost(
                      config.memory_mb,
                      tr.service_by_k[static_cast<std::size_t>(B)]);
  for (std::int64_t n = 0; n < B - 1; ++n) {
    invocation_cost +=
        tr.timeout_law[static_cast<std::size_t>(n)] *
        lambda_.invocation_cost(config.memory_mb,
                                tr.service_by_k[static_cast<std::size_t>(n + 1)]);
  }
  eval.cost_per_request = tr.expected_k > 0.0
                              ? invocation_cost / tr.expected_k
                              : invocation_cost;

  // Percentile by bisection on the latency CDF.
  const double service_max = *std::max_element(tr.service_by_k.begin() + 1,
                                               tr.service_by_k.end());
  double lo = 0.0;
  double hi = tr.T + service_max + 1e-6;
  for (std::size_t it = 0; it < options_.bisection_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (tr.cdf(map_.d1(), mid) >= percentile) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  eval.latency_percentile = 0.5 * (lo + hi);
  eval.feasible = eval.latency_percentile <= slo_s;
  return eval;
}

AnalyticSearchResult analytic_grid_search(const BatchAnalyticModel& model,
                                          const lambda::ConfigGrid& grid,
                                          double slo_s, double percentile) {
  const auto configs = grid.enumerate();
  DEEPBAT_CHECK(!configs.empty(), "analytic_grid_search: empty grid");
  const auto t0 = std::chrono::steady_clock::now();
  const auto evals = parallel_map<AnalyticEvaluation>(
      configs.size(),
      [&](std::size_t i) {
        return model.evaluate(configs[i], percentile, slo_s);
      },
      /*grain=*/1);  // each item solves a full queueing model — always split
  const GridSearchResult scan = grid_search_argmin(
      evals.size(), [&](std::size_t i) { return evals[i].feasible; },
      [&](std::size_t i) { return evals[i].latency_percentile; },
      [&](std::size_t i) { return evals[i].cost_per_request; });
  AnalyticSearchResult result;
  result.best = evals[scan.best];
  result.any_feasible = scan.any_feasible;
  const auto t1 = std::chrono::steady_clock::now();
  result.solve_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace deepbat::batchlib
