#include "batchlib/controller.hpp"

namespace deepbat::batchlib {

BatchController::BatchController(const lambda::LambdaModel& model,
                                 BatchControllerOptions options)
    : model_(model), options_(std::move(options)) {
  model_.validate(options_.bootstrap_config);
}

lambda::Config BatchController::decide(const workload::Trace& history,
                                       double now) {
  if (current_.has_value() &&
      now < last_refit_ + options_.refit_interval_s) {
    return *current_;
  }

  const workload::Trace window =
      history.slice(now - options_.profile_window_s, now);
  const auto gaps = window.interarrivals();
  const auto fit = workload::fit_mmpp2(gaps, options_.fit_options);
  if (!fit.has_value()) {
    // Not enough data to fit a MAP — BATCH must keep collecting and serve
    // with whatever configuration it has.
    ++insufficient_;
    return current_.value_or(options_.bootstrap_config);
  }

  last_refit_ = now;
  ++refit_count_;
  fit_seconds_ += fit->fit_seconds;
  last_fit_ = fit;

  const BatchAnalyticModel analytic(fit->map, model_,
                                    options_.analytic_options);
  const AnalyticSearchResult search = analytic_grid_search(
      analytic, options_.grid, options_.slo_s, options_.percentile);
  solve_seconds_ += search.solve_seconds;
  current_ = search.best.config;
  return *current_;
}

}  // namespace deepbat::batchlib
