#include "batchlib/controller.hpp"

namespace deepbat::batchlib {

BatchController::BatchController(const lambda::LambdaModel& model,
                                 BatchControllerOptions options)
    : model_(model), options_(std::move(options)) {
  model_.validate(options_.bootstrap_config);
}

lambda::Config BatchController::decide(const workload::Trace& history,
                                       double now) {
  if (current_.has_value() &&
      now < last_refit_ + options_.refit_interval_s) {
    return *current_;
  }

  const workload::Trace window =
      history.slice(now - options_.profile_window_s, now);
  const auto gaps = window.interarrivals();
  const auto fit = workload::fit_mmpp2(gaps, options_.fit_options);
  if (!fit.has_value()) {
    // Not enough data to fit a MAP — BATCH must keep collecting and serve
    // with whatever configuration it has.
    ++insufficient_;
    return current_.value_or(options_.bootstrap_config);
  }

  last_refit_ = now;
  ++refit_count_;
  fit_seconds_ += fit->fit_seconds;
  last_fit_ = fit;

  const BatchAnalyticModel analytic(fit->map, model_,
                                    options_.analytic_options);
  const AnalyticSearchResult search = analytic_grid_search(
      analytic, options_.grid, options_.slo_s, options_.percentile);
  solve_seconds_ += search.solve_seconds;
  current_ = search.best.config;
  return *current_;
}

void BatchController::save_state(sim::CheckpointWriter& w) const {
  w.boolean(current_.has_value());
  if (current_.has_value()) sim::save_config(w, *current_);
  w.f64(last_refit_);
  w.u64(refit_count_);
  w.u64(insufficient_);
  w.f64(fit_seconds_);
  w.f64(solve_seconds_);
}

void BatchController::restore_state(sim::CheckpointReader& r) {
  current_.reset();
  if (r.boolean()) current_ = sim::restore_config(r);
  last_refit_ = r.f64();
  refit_count_ = static_cast<std::size_t>(r.u64());
  insufficient_ = static_cast<std::size_t>(r.u64());
  fit_seconds_ = r.f64();
  solve_seconds_ = r.f64();
  last_fit_.reset();
}

}  // namespace deepbat::batchlib
