#pragma once
// The BATCH baseline as a pluggable controller (paper §IV-B: "Every hour,
// BATCH profiles the workload and fits its arrival process into a MAP",
// then solves the analytic model over the config grid). Between refits the
// configuration is held fixed — exactly the staleness that costs BATCH SLO
// violations on bursty traces (Figs. 7-12).

#include <limits>
#include <optional>

#include "batchlib/analytic.hpp"
#include "sim/checkpoint.hpp"
#include "sim/platform.hpp"
#include "workload/map_fit.hpp"

namespace deepbat::batchlib {

struct BatchControllerOptions {
  double refit_interval_s = 3600.0;   // hourly re-optimization
  double profile_window_s = 3600.0;   // fit on the previous hour
  double slo_s = 0.1;
  double percentile = 0.95;
  lambda::ConfigGrid grid = lambda::ConfigGrid::standard();
  workload::MapFitOptions fit_options;
  AnalyticOptions analytic_options;
  /// Used until the first successful fit.
  lambda::Config bootstrap_config{1024, 1, 0.0};
};

class BatchController : public sim::Controller, public sim::Checkpointable {
 public:
  BatchController(const lambda::LambdaModel& model,
                  BatchControllerOptions options = {});

  lambda::Config decide(const workload::Trace& history, double now) override;
  std::string name() const override { return "BATCH"; }

  /// sim::Checkpointable (DESIGN.md §16): the held configuration, the refit
  /// clock, and the cumulative instrumentation. last_fit() is diagnostics
  /// only — decide() never reads it — so it is not serialized and resets to
  /// empty on restore.
  void save_state(sim::CheckpointWriter& w) const override;
  void restore_state(sim::CheckpointReader& r) override;

  // --- instrumentation used by the speedup experiment (§IV-F) ---
  std::size_t refit_count() const { return refit_count_; }
  std::size_t insufficient_data_count() const { return insufficient_; }
  double total_fit_seconds() const { return fit_seconds_; }
  double total_solve_seconds() const { return solve_seconds_; }
  const std::optional<workload::MapFitResult>& last_fit() const {
    return last_fit_;
  }

 private:
  const lambda::LambdaModel& model_;
  BatchControllerOptions options_;
  std::optional<lambda::Config> current_;
  double last_refit_ = -std::numeric_limits<double>::infinity();
  std::size_t refit_count_ = 0;
  std::size_t insufficient_ = 0;
  double fit_seconds_ = 0.0;
  double solve_seconds_ = 0.0;
  std::optional<workload::MapFitResult> last_fit_;
};

}  // namespace deepbat::batchlib
