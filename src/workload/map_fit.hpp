#pragma once
// MMPP(2) fitting by moment matching — the front half of the BATCH baseline
// (paper §II / §IV-B: "Every hour, BATCH profiles the workload and fits its
// arrival process into a MAP").
//
// The fitter matches three empirical statistics of the inter-arrival sample
// — mean, squared coefficient of variation, and lag-1 autocorrelation — to
// the closed-form MMPP(2) expressions via Nelder-Mead in log-parameter
// space. When the sample shows no burstiness (SCV ~ <= 1 or no positive
// autocorrelation) a Poisson process is returned instead, mirroring the
// degenerate-fit fallback of KPC-style tools.

#include <optional>
#include <span>

#include "workload/map_process.hpp"

namespace deepbat::workload {

struct MapFitResult {
  Map map;                      // fitted process
  bool degenerate_poisson;      // true if the fit fell back to Poisson
  double target_mean;           // empirical statistics that were matched
  double target_scv;
  double target_rho1;
  double fitted_mean;           // statistics of the fitted process
  double fitted_scv;
  double fitted_rho1;
  double objective;             // residual of the moment match
  double fit_seconds;           // wall-clock cost of the fit (the overhead
                                // DeepBAT's parser avoids)
};

struct MapFitOptions {
  /// Minimum number of inter-arrival samples for a meaningful fit; below
  /// this the fitter refuses (BATCH must wait for more data).
  std::size_t min_samples = 200;
  int max_iterations = 4000;
  /// Relative weight of the autocorrelation residual.
  double rho_weight = 4.0;
};

/// Fit an MMPP(2) to inter-arrival samples. Returns nullopt when fewer than
/// `min_samples` gaps are available (insufficient data — the situation the
/// paper calls out as a BATCH weakness under low arrival rates).
std::optional<MapFitResult> fit_mmpp2(std::span<const double> interarrivals,
                                      const MapFitOptions& options = {});

}  // namespace deepbat::workload
