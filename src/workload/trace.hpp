#pragma once
// Arrival traces: a monotone sequence of absolute arrival timestamps
// (seconds). This is the common currency between the synthesizers, the
// workload parser, the simulator, and both optimizers.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace deepbat::workload {

class Trace {
 public:
  Trace() = default;
  /// Takes ownership of timestamps; they must be non-decreasing.
  explicit Trace(std::vector<double> arrival_times);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  double operator[](std::size_t i) const { return times_[i]; }
  std::span<const double> times() const { return times_; }

  /// First/last timestamps (0 on empty).
  double start_time() const;
  double end_time() const;
  double duration() const { return end_time() - start_time(); }

  /// Mean arrival rate over the trace span (req/s); 0 for < 2 arrivals.
  double mean_rate() const;

  /// Successive differences; size() - 1 entries.
  std::vector<double> interarrivals() const;

  /// Arrivals with t0 <= t < t1, timestamps kept absolute.
  Trace slice(double t0, double t1) const;

  /// The last `count` inter-arrival times strictly before time `t`
  /// (DeepBAT's workload-parser window). If fewer are available, the result
  /// is left-padded with `pad_value` to exactly `count` entries.
  std::vector<double> window_before(double t, std::size_t count,
                                    double pad_value) const;

  /// Per-bin arrival counts over [start, end) with the given bin width —
  /// the arrival-rate series of paper Fig. 4.
  std::vector<std::size_t> rate_histogram(double bin_width) const;

  /// Append another trace; its first timestamp must be >= our last.
  void append(const Trace& other);

  /// Save/load one timestamp per line (plain text, for data exchange).
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

 private:
  std::vector<double> times_;
};

/// Build a trace from inter-arrival times starting at `start_time`.
Trace trace_from_interarrivals(std::span<const double> gaps,
                               double start_time = 0.0);

/// Merge-sort several traces into one superposed arrival stream — the
/// aggregated trace a fleet function group serves (core::FleetOptimizer).
/// Deterministic: a k-way stable merge; equal timestamps keep the order of
/// the input traces.
Trace merge_traces(std::span<const Trace* const> traces);

}  // namespace deepbat::workload
