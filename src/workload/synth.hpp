#pragma once
// Trace synthesizers standing in for the paper's four evaluation workloads
// (Azure Functions, Twitter stream, Alibaba MLaaS cluster, MAP-generated
// synthetic). The real traces are not redistributable; these generators are
// matched to the published statistical profiles instead:
//
//   * azure_like  — diurnal rate curve, moderate but time-varying
//                   burstiness (paper Fig. 5a: IDC ~ 10-50, variable)
//   * twitter_like— near-constant rate, mild burstiness (Fig. 5b: IDC ~ 4)
//   * alibaba_like— low base load with sharp random MLaaS spike episodes
//                   (Fig. 5c: IDC in the hundreds, hour-scale on/off)
//   * synthetic_map — per-hour random on-off MMPP(2) segments, the paper's
//                   own §IV-A.2 construction (Fig. 5d)
//
// The conclusions of the paper depend on the *ordering* of burstiness
// across these workloads, which these profiles preserve (checked in
// tests/workload/test_synth.cpp and printed by bench/fig05_idc).

#include <cstdint>

#include "workload/map_process.hpp"
#include "workload/trace.hpp"

namespace deepbat::workload {

constexpr double kSecondsPerHour = 3600.0;

struct AzureLikeParams {
  double hours = 24.0;
  double base_rate = 35.0;      // req/s, diurnal mean
  double diurnal_amplitude = 20.0;
  double peak_hour = 19.0;      // arrival-rate peak (paper snapshot 19:40)
  double burst_ratio = 2.5;     // fast-phase rate / slow-phase rate
  double mean_sojourn_s = 5.0;  // phase sojourn
  double segment_s = 300.0;     // piecewise-stationary segment length
};

struct TwitterLikeParams {
  double hours = 24.0;
  double base_rate = 45.0;
  double modulation = 0.15;     // +-15 % slow rate drift
  double burst_ratio = 1.5;     // mild: IDC ~ 4
  double mean_sojourn_s = 2.0;
  double segment_s = 300.0;
};

struct AlibabaLikeParams {
  double hours = 24.0;
  double base_rate = 4.0;            // idle MLaaS background load
  double spikes_per_hour = 2.5;      // spike episode frequency
  double spike_multiplier_lo = 15.0; // episode rate = base * U(lo, hi)
  double spike_multiplier_hi = 60.0;
  double spike_duration_lo_s = 60.0;
  double spike_duration_hi_s = 420.0;
  /// Some hours are nearly flat (the paper notes BATCH mispredicts after a
  /// flat hour precedes a peak).
  double quiet_hour_probability = 0.25;
};

struct SyntheticMapParams {
  double hours = 24.0;
  double on_rate_lo = 40.0;   // ON-phase arrival rate range
  double on_rate_hi = 220.0;
  double on_time_lo_s = 20.0; // mean ON sojourn range
  double on_time_hi_s = 120.0;
  double off_time_lo_s = 30.0;
  double off_time_hi_s = 400.0;
};

/// Heavy-tailed multi-tenant population (DESIGN.md §15): tenant of
/// popularity rank r gets Poisson arrivals at top_rate / r^exponent req/s —
/// the Zipf-like skew serverless platform studies report for function
/// invocation counts (a few hot functions, a long cold tail). With
/// min_rate = 0 the deep tail's expected arrivals fall below one per
/// horizon and those tenants come out EMPTY (the runtime retires them at
/// birth as never_ticks slots); a positive min_rate floors the tail so
/// every tenant stays live.
struct ZipfPopulationParams {
  std::size_t tenants = 1000;
  double horizon_s = 600.0;  // each tenant's trace spans [0, horizon_s)
  double exponent = 1.1;     // skew; 0 = uniform rates, >1 = heavy head
  double top_rate = 50.0;    // req/s of the rank-1 tenant
  double min_rate = 0.0;     // rate floor for the tail (0 = pure Zipf)
  /// Deterministically shuffle rank -> tenant index, so popularity is not
  /// correlated with registration order (and therefore not with the
  /// runtime's home-shard assignment).
  bool shuffle = true;
};

/// One trace per tenant, indexed by tenant. Per-tenant arrival streams are
/// independently seeded, so the population is stable under reordering and
/// reproducible at any size.
std::vector<Trace> zipf_population(const ZipfPopulationParams& params,
                                   std::uint64_t seed);

Trace azure_like(const AzureLikeParams& params, std::uint64_t seed);
Trace twitter_like(const TwitterLikeParams& params, std::uint64_t seed);
Trace alibaba_like(const AlibabaLikeParams& params, std::uint64_t seed);
Trace synthetic_map(const SyntheticMapParams& params, std::uint64_t seed);

/// Hour-by-hour empirical IDC series of a trace (paper Fig. 5). Hours with
/// too few arrivals report IDC = 1 (no evidence of burstiness).
std::vector<double> hourly_idc(const Trace& trace, std::size_t max_lag = 200);

/// Hour-by-hour mean arrival rate (req/s) of a trace (paper Fig. 4 binned
/// to the given width in seconds).
std::vector<double> binned_rate(const Trace& trace, double bin_s);

}  // namespace deepbat::workload
