#include "workload/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace deepbat::workload {

namespace {

/// Append arrivals of `map` over [t, t + duration) to `times`.
void append_segment(std::vector<double>& times, const Map& map,
                    double start, double duration, Rng& rng) {
  const Trace seg = map.sample_for_duration(duration, rng, start);
  times.insert(times.end(), seg.times().begin(), seg.times().end());
}

/// MMPP(2) around a target mean rate: fast phase at ratio * slow phase,
/// sojourn times equal in both phases so the time-average rate matches.
Map bursty_segment(double mean_rate, double burst_ratio, double sojourn_s) {
  DEEPBAT_CHECK(mean_rate > 0.0 && burst_ratio >= 1.0 && sojourn_s > 0.0,
                "bursty_segment: bad parameters");
  // Equal sojourns: mean rate = (fast + slow) / 2.
  const double slow = 2.0 * mean_rate / (1.0 + burst_ratio);
  const double fast = burst_ratio * slow;
  const double sw = 1.0 / sojourn_s;
  return Map::mmpp2(fast, std::max(slow, 1e-9), sw, sw);
}

}  // namespace

std::vector<Trace> zipf_population(const ZipfPopulationParams& p,
                                   std::uint64_t seed) {
  DEEPBAT_CHECK(p.tenants > 0, "zipf_population: need at least one tenant");
  DEEPBAT_CHECK(p.horizon_s > 0.0 && p.top_rate > 0.0,
                "zipf_population: horizon and top rate must be positive");
  DEEPBAT_CHECK(p.exponent >= 0.0 && p.min_rate >= 0.0,
                "zipf_population: exponent and rate floor must be >= 0");
  // Popularity rank -> tenant index. The shuffle draws from its own stream
  // so per-tenant arrival sequences do not depend on whether it is on.
  std::vector<std::size_t> tenant_of_rank;
  if (p.shuffle) {
    Rng shuffle_rng(SplitMix64(seed).next());
    tenant_of_rank = shuffle_rng.permutation(p.tenants);
  } else {
    tenant_of_rank.resize(p.tenants);
    for (std::size_t r = 0; r < p.tenants; ++r) tenant_of_rank[r] = r;
  }
  std::vector<Trace> out(p.tenants);
  SplitMix64 stream_seeds(seed);
  for (std::size_t r = 0; r < p.tenants; ++r) {
    const double rate = std::max(
        p.top_rate / std::pow(static_cast<double>(r + 1), p.exponent),
        p.min_rate);
    // Independent per-rank stream: the population is reproducible at any
    // size (growing it appends tenants without perturbing existing ones).
    Rng rng(stream_seeds.next());
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(rate * p.horizon_s) + 1);
    for (double t = rng.exponential(rate); t < p.horizon_s;
         t += rng.exponential(rate)) {
      times.push_back(t);
    }
    out[tenant_of_rank[r]] = Trace(std::move(times));
  }
  return out;
}

Trace azure_like(const AzureLikeParams& p, std::uint64_t seed) {
  DEEPBAT_CHECK(p.hours > 0.0, "azure_like: hours must be positive");
  Rng rng(seed);
  std::vector<double> times;
  const double total_s = p.hours * kSecondsPerHour;
  for (double t = 0.0; t < total_s; t += p.segment_s) {
    const double hour = t / kSecondsPerHour;
    const double phase =
        2.0 * std::numbers::pi * (hour - p.peak_hour) / 24.0;
    double rate = p.base_rate + p.diurnal_amplitude * std::cos(phase);
    rate *= 1.0 + 0.1 * rng.normal();  // short-term noise
    rate = std::max(rate, 0.5);
    const Map seg = bursty_segment(rate, p.burst_ratio, p.mean_sojourn_s);
    append_segment(times, seg, t, std::min(p.segment_s, total_s - t), rng);
  }
  return Trace(std::move(times));
}

Trace twitter_like(const TwitterLikeParams& p, std::uint64_t seed) {
  DEEPBAT_CHECK(p.hours > 0.0, "twitter_like: hours must be positive");
  Rng rng(seed);
  std::vector<double> times;
  const double total_s = p.hours * kSecondsPerHour;
  for (double t = 0.0; t < total_s; t += p.segment_s) {
    const double hour = t / kSecondsPerHour;
    // Slow sinusoidal drift plus small noise; much flatter than Azure.
    const double drift =
        1.0 + p.modulation * std::sin(2.0 * std::numbers::pi * hour / 24.0);
    double rate = p.base_rate * drift * (1.0 + 0.05 * rng.normal());
    rate = std::max(rate, 0.5);
    const Map seg = bursty_segment(rate, p.burst_ratio, p.mean_sojourn_s);
    append_segment(times, seg, t, std::min(p.segment_s, total_s - t), rng);
  }
  return Trace(std::move(times));
}

Trace alibaba_like(const AlibabaLikeParams& p, std::uint64_t seed) {
  DEEPBAT_CHECK(p.hours > 0.0, "alibaba_like: hours must be positive");
  Rng rng(seed);
  std::vector<double> times;
  const double total_s = p.hours * kSecondsPerHour;

  // Background load (Poisson at base_rate) over the whole horizon.
  {
    const Map bg = Map::poisson(p.base_rate);
    append_segment(times, bg, 0.0, total_s, rng);
  }

  // Spike episodes: per hour, either a quiet hour (no spikes) or a Poisson
  // number of episodes at random offsets. Episodes are short high-rate
  // bursts — the "MLaaS job wave" pattern that drives IDC into the
  // hundreds.
  for (std::size_t h = 0; h < static_cast<std::size_t>(p.hours); ++h) {
    if (rng.uniform() < p.quiet_hour_probability) continue;
    const auto episodes = rng.poisson(p.spikes_per_hour);
    for (std::int64_t e = 0; e < episodes; ++e) {
      const double start =
          (static_cast<double>(h) + rng.uniform()) * kSecondsPerHour;
      const double duration =
          rng.uniform(p.spike_duration_lo_s, p.spike_duration_hi_s);
      const double mult =
          rng.uniform(p.spike_multiplier_lo, p.spike_multiplier_hi);
      if (start + duration > total_s) continue;
      const Map spike = Map::poisson(p.base_rate * mult);
      append_segment(times, spike, start, duration, rng);
    }
  }
  std::sort(times.begin(), times.end());
  return Trace(std::move(times));
}

Trace synthetic_map(const SyntheticMapParams& p, std::uint64_t seed) {
  DEEPBAT_CHECK(p.hours > 0.0, "synthetic_map: hours must be positive");
  Rng rng(seed);
  std::vector<double> times;
  const double total_s = p.hours * kSecondsPerHour;
  // One unique on-off MAP per hour (paper §IV-A.2: "24 unique workload
  // streams, one for each 24-hour period ... on-off traffic behaviors").
  for (double t = 0.0; t < total_s; t += kSecondsPerHour) {
    const double on_rate = rng.uniform(p.on_rate_lo, p.on_rate_hi);
    const double on_time = rng.uniform(p.on_time_lo_s, p.on_time_hi_s);
    const double off_time = rng.uniform(p.off_time_lo_s, p.off_time_hi_s);
    const Map seg = Map::on_off(on_rate, on_time, off_time);
    append_segment(times, seg, t, std::min(kSecondsPerHour, total_s - t),
                   rng);
  }
  return Trace(std::move(times));
}

std::vector<double> hourly_idc(const Trace& trace, std::size_t max_lag) {
  std::vector<double> out;
  if (trace.empty()) return out;
  const double start = trace.start_time();
  const auto hours = static_cast<std::size_t>(
      std::ceil((trace.end_time() - start) / kSecondsPerHour));
  for (std::size_t h = 0; h < hours; ++h) {
    const Trace hour_slice = trace.slice(
        start + static_cast<double>(h) * kSecondsPerHour,
        start + static_cast<double>(h + 1) * kSecondsPerHour);
    const auto gaps = hour_slice.interarrivals();
    out.push_back(gaps.size() < 10 ? 1.0
                                   : index_of_dispersion(gaps, max_lag));
  }
  return out;
}

std::vector<double> binned_rate(const Trace& trace, double bin_s) {
  const auto counts = trace.rate_histogram(bin_s);
  std::vector<double> rates;
  rates.reserve(counts.size());
  for (std::size_t c : counts) {
    rates.push_back(static_cast<double>(c) / bin_s);
  }
  return rates;
}

}  // namespace deepbat::workload
