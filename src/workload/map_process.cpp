#include "workload/map_process.hpp"

#include <cmath>

#include "common/error.hpp"

namespace deepbat::workload {

namespace {

void validate_map(const Matrix& d0, const Matrix& d1) {
  DEEPBAT_CHECK(d0.rows() == d0.cols(), "Map: D0 must be square");
  DEEPBAT_CHECK(d1.rows() == d0.rows() && d1.cols() == d0.cols(),
                "Map: D1 shape must match D0");
  const std::size_t n = d0.rows();
  for (std::size_t i = 0; i < n; ++i) {
    DEEPBAT_CHECK(d0(i, i) < 0.0, "Map: D0 diagonal must be negative");
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        DEEPBAT_CHECK(d0(i, j) >= 0.0, "Map: D0 off-diagonal must be >= 0");
      }
      DEEPBAT_CHECK(d1(i, j) >= 0.0, "Map: D1 entries must be >= 0");
      row += d0(i, j) + d1(i, j);
    }
    DEEPBAT_CHECK(std::abs(row) < 1e-8 * std::abs(d0(i, i)) + 1e-10,
                  "Map: rows of D0 + D1 must sum to zero");
  }
}

}  // namespace

Map::Map(Matrix d0, Matrix d1) : d0_(std::move(d0)), d1_(std::move(d1)) {
  validate_map(d0_, d1_);
  neg_d0_inv_ = (d0_ * -1.0).inverse();
  p_ = neg_d0_inv_ * d1_;
}

Map Map::poisson(double rate) {
  DEEPBAT_CHECK(rate > 0.0, "Map::poisson: rate must be positive");
  Matrix d0(1, 1);
  Matrix d1(1, 1);
  d0(0, 0) = -rate;
  d1(0, 0) = rate;
  return Map(std::move(d0), std::move(d1));
}

Map Map::mmpp2(double rate1, double rate2, double r12, double r21) {
  DEEPBAT_CHECK(rate1 >= 0.0 && rate2 >= 0.0 && (rate1 > 0.0 || rate2 > 0.0),
                "Map::mmpp2: need a positive rate");
  DEEPBAT_CHECK(r12 > 0.0 && r21 > 0.0,
                "Map::mmpp2: switching rates must be positive");
  Matrix d0(2, 2);
  Matrix d1(2, 2);
  d0(0, 0) = -(rate1 + r12);
  d0(0, 1) = r12;
  d0(1, 0) = r21;
  d0(1, 1) = -(rate2 + r21);
  d1(0, 0) = rate1;
  d1(1, 1) = rate2;
  return Map(std::move(d0), std::move(d1));
}

Map Map::on_off(double rate, double on_time, double off_time) {
  DEEPBAT_CHECK(rate > 0.0 && on_time > 0.0 && off_time > 0.0,
                "Map::on_off: parameters must be positive");
  // OFF phase keeps an epsilon arrival rate so the embedded chain stays
  // irreducible; it is negligible relative to the ON rate.
  const double eps_rate = rate * 1e-9;
  return mmpp2(rate, eps_rate, 1.0 / on_time, 1.0 / off_time);
}

std::vector<double> Map::phase_stationary() const {
  return ctmc_stationary(d0_ + d1_);
}

std::vector<double> Map::arrival_phase_stationary() const {
  return stationary_distribution(p_);
}

double Map::arrival_rate() const {
  const auto pi = phase_stationary();
  const std::vector<double> ones(order(), 1.0);
  const auto d1_ones = mat_vec(d1_, ones);
  double rate = 0.0;
  for (std::size_t i = 0; i < order(); ++i) rate += pi[i] * d1_ones[i];
  return rate;
}

double Map::interarrival_moment(int k) const {
  DEEPBAT_CHECK(k >= 1, "interarrival_moment: k must be >= 1");
  const auto pia = arrival_phase_stationary();
  std::vector<double> v = pia;
  double factorial = 1.0;
  for (int i = 1; i <= k; ++i) {
    v = vec_mat(v, neg_d0_inv_);
    factorial *= static_cast<double>(i);
  }
  double total = 0.0;
  for (double x : v) total += x;
  return factorial * total;
}

double Map::interarrival_scv() const {
  const double m1 = interarrival_moment(1);
  const double m2 = interarrival_moment(2);
  return (m2 - m1 * m1) / (m1 * m1);
}

double Map::interarrival_autocorrelation(int lag) const {
  DEEPBAT_CHECK(lag >= 0, "interarrival_autocorrelation: lag must be >= 0");
  if (lag == 0) return 1.0;
  const double m1 = interarrival_moment(1);
  const double m2 = interarrival_moment(2);
  const double var = m2 - m1 * m1;
  if (var <= 0.0) return 0.0;
  // E[X_0 X_k] = pi_a M P^k M 1 with M = (-D0)^{-1}.
  const auto pia = arrival_phase_stationary();
  std::vector<double> v = vec_mat(pia, neg_d0_inv_);
  for (int i = 0; i < lag; ++i) v = vec_mat(v, p_);
  v = vec_mat(v, neg_d0_inv_);
  double joint = 0.0;
  for (double x : v) joint += x;
  return (joint - m1 * m1) / var;
}

double Map::idc_limit(int max_lag) const {
  const double c2 = interarrival_scv();
  double rho_sum = 0.0;
  for (int k = 1; k <= max_lag; ++k) {
    const double rho = interarrival_autocorrelation(k);
    rho_sum += rho;
    if (std::abs(rho) < 1e-12) break;
  }
  return c2 * (1.0 + 2.0 * rho_sum);
}

Trace Map::sample_arrivals(std::size_t n, Rng& rng, double start) const {
  const auto pi = phase_stationary();
  std::size_t phase = rng.categorical(pi);
  std::vector<double> times;
  times.reserve(n);
  double t = start;
  const std::size_t m = order();
  while (times.size() < n) {
    const double hold = rng.exponential(-d0_(phase, phase));
    t += hold;
    // Competing exits: D0 off-diagonals (phase change) and D1 row (arrival).
    std::vector<double> weights(2 * m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      if (j != phase) weights[j] = d0_(phase, j);
      weights[m + j] = d1_(phase, j);
    }
    const std::size_t pick = rng.categorical(weights);
    if (pick >= m) {
      times.push_back(t);
      phase = pick - m;
    } else {
      phase = pick;
    }
  }
  return Trace(std::move(times));
}

Trace Map::sample_for_duration(double duration, Rng& rng, double start) const {
  DEEPBAT_CHECK(duration > 0.0, "sample_for_duration: need positive span");
  const auto pi = phase_stationary();
  std::size_t phase = rng.categorical(pi);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(arrival_rate() * duration * 1.2) + 16);
  double t = start;
  const double end = start + duration;
  const std::size_t m = order();
  while (true) {
    const double hold = rng.exponential(-d0_(phase, phase));
    t += hold;
    if (t >= end) break;
    std::vector<double> weights(2 * m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      if (j != phase) weights[j] = d0_(phase, j);
      weights[m + j] = d1_(phase, j);
    }
    const std::size_t pick = rng.categorical(weights);
    if (pick >= m) {
      times.push_back(t);
      phase = pick - m;
    } else {
      phase = pick;
    }
  }
  return Trace(std::move(times));
}

}  // namespace deepbat::workload
