#include "workload/map_fit.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/optimize.hpp"
#include "common/stats.hpp"

namespace deepbat::workload {

namespace {

/// Decode log-multipliers (relative to the empirical rate) into a valid
/// MMPP(2). Clamping to +-exp(6) (~400x) keeps the fitted process within a
/// physically plausible range of the data — unbounded parameters would let
/// the optimizer trade realism for moment error via astronomically fast
/// phases, which also destroys the downstream transient solver's step
/// control.
Map decode(const std::vector<double>& x, double base_rate) {
  auto bounded = [base_rate](double v) {
    return base_rate * std::exp(std::clamp(v, -6.0, 6.0));
  };
  return Map::mmpp2(bounded(x[0]), bounded(x[1]), bounded(x[2]),
                    bounded(x[3]));
}

}  // namespace

std::optional<MapFitResult> fit_mmpp2(std::span<const double> interarrivals,
                                      const MapFitOptions& options) {
  if (interarrivals.size() < options.min_samples) return std::nullopt;
  const auto t0 = std::chrono::steady_clock::now();

  const double m1 = mean(interarrivals);
  DEEPBAT_CHECK(m1 > 0.0, "fit_mmpp2: non-positive mean inter-arrival");
  const double c2 = scv(interarrivals);
  const double rho1 = autocorrelation(interarrivals, 1);
  const double rate = 1.0 / m1;

  auto finish = [&](Map map, bool degenerate, double objective) {
    const auto t1 = std::chrono::steady_clock::now();
    MapFitResult r{std::move(map),
                   degenerate,
                   m1,
                   c2,
                   rho1,
                   0.0,
                   0.0,
                   0.0,
                   objective,
                   std::chrono::duration<double>(t1 - t0).count()};
    r.fitted_mean = r.map.interarrival_mean();
    if (r.map.order() > 1) {
      r.fitted_scv = r.map.interarrival_scv();
      r.fitted_rho1 = r.map.interarrival_autocorrelation(1);
    } else {
      r.fitted_scv = 1.0;
      r.fitted_rho1 = 0.0;
    }
    return r;
  };

  // No burstiness evidence -> Poisson fallback.
  if (c2 <= 1.05 || rho1 <= 0.005) {
    return finish(Map::poisson(rate), true, 0.0);
  }

  const auto objective = [&](const std::vector<double>& x) {
    const Map map = decode(x, rate);
    const double em = map.interarrival_mean();
    const double ec2 = map.interarrival_scv();
    const double er1 = map.interarrival_autocorrelation(1);
    const double dm = em / m1 - 1.0;
    const double dc = ec2 / c2 - 1.0;
    const double dr = er1 - rho1;
    return dm * dm + dc * dc + options.rho_weight * dr * dr;
  };

  // Start: a bursty two-phase guess around the empirical rate — fast phase
  // above the mean rate, slow phase below, sojourns ~50 inter-arrivals.
  const std::vector<double> x0{std::log(3.0), std::log(0.2),
                               std::log(1.0 / 50.0), std::log(1.0 / 50.0)};
  NelderMeadOptions nm;
  nm.max_iterations = options.max_iterations;
  nm.initial_step = 0.7;
  const auto best = nelder_mead(objective, x0, nm);
  return finish(decode(best.x, rate), false, best.value);
}

}  // namespace deepbat::workload
