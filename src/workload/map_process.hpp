#pragma once
// Markovian Arrival Processes (MAPs) — the workload model both the paper's
// synthetic trace and the BATCH baseline are built on.
//
// A MAP of order n is defined by two n x n matrices: D0 holds the phase
// transitions without arrivals (negative diagonal), D1 the transitions that
// emit an arrival; D0 + D1 is a CTMC generator. The special case MMPP(2)
// (Markov-modulated Poisson process with two phases) is what BATCH fits.
//
// Closed-form inter-arrival statistics (mean, moments, SCV, lag-k
// autocorrelation) follow standard matrix-analytic formulas using the
// embedded chain P = (-D0)^{-1} D1 and its stationary vector.

#include <cstdint>
#include <vector>

#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace deepbat::workload {

class Map {
 public:
  /// Validates: square same-size matrices, D0 off-diagonals and all of D1
  /// non-negative, rows of D0 + D1 summing to ~0, negative D0 diagonal.
  Map(Matrix d0, Matrix d1);

  /// Poisson process as an order-1 MAP.
  static Map poisson(double rate);

  /// MMPP(2): Poisson with rate `rate1` in phase 1, `rate2` in phase 2,
  /// switching 1->2 at `r12` and 2->1 at `r21`.
  static Map mmpp2(double rate1, double rate2, double r12, double r21);

  /// Interrupted Poisson process: ON with `rate`, OFF silent, mean ON
  /// sojourn `on_time`, mean OFF sojourn `off_time` — the on-off traffic the
  /// paper's synthetic workload exhibits. (MMPP(2) with rate2 ~ 0.)
  static Map on_off(double rate, double on_time, double off_time);

  std::size_t order() const { return d0_.rows(); }
  const Matrix& d0() const { return d0_; }
  const Matrix& d1() const { return d1_; }

  /// Stationary distribution of the underlying CTMC (D0 + D1).
  std::vector<double> phase_stationary() const;

  /// Stationary phase distribution embedded at arrival instants
  /// (left eigenvector of P = (-D0)^{-1} D1).
  std::vector<double> arrival_phase_stationary() const;

  /// Long-run arrival rate (lambda = pi D1 1).
  double arrival_rate() const;

  /// k-th raw moment of the stationary inter-arrival time:
  /// E[X^k] = k! * pi_a (-D0)^{-k} 1.
  double interarrival_moment(int k) const;

  double interarrival_mean() const { return interarrival_moment(1); }

  /// Squared coefficient of variation of inter-arrival times.
  double interarrival_scv() const;

  /// Lag-k autocorrelation of the stationary inter-arrival sequence.
  double interarrival_autocorrelation(int lag) const;

  /// Analytic limit of the index of dispersion for intervals
  /// (SCV * (1 + 2 * sum of all autocorrelations), truncated at max_lag).
  double idc_limit(int max_lag = 500) const;

  /// Generate `n` arrivals starting at time `start`; the initial phase is
  /// drawn from the CTMC stationary distribution.
  Trace sample_arrivals(std::size_t n, Rng& rng, double start = 0.0) const;

  /// Generate arrivals over [start, start + duration).
  Trace sample_for_duration(double duration, Rng& rng,
                            double start = 0.0) const;

 private:
  Matrix d0_;
  Matrix d1_;
  Matrix neg_d0_inv_;  // (-D0)^{-1}, cached
  Matrix p_;           // embedded chain
};

}  // namespace deepbat::workload
