#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/error.hpp"

namespace deepbat::workload {

Trace::Trace(std::vector<double> arrival_times)
    : times_(std::move(arrival_times)) {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    DEEPBAT_CHECK(times_[i] >= times_[i - 1],
                  "Trace: timestamps must be non-decreasing");
  }
}

double Trace::start_time() const { return times_.empty() ? 0.0 : times_.front(); }

double Trace::end_time() const { return times_.empty() ? 0.0 : times_.back(); }

double Trace::mean_rate() const {
  if (times_.size() < 2 || duration() <= 0.0) return 0.0;
  return static_cast<double>(times_.size() - 1) / duration();
}

std::vector<double> Trace::interarrivals() const {
  std::vector<double> gaps;
  if (times_.size() < 2) return gaps;
  gaps.reserve(times_.size() - 1);
  for (std::size_t i = 1; i < times_.size(); ++i) {
    gaps.push_back(times_[i] - times_[i - 1]);
  }
  return gaps;
}

Trace Trace::slice(double t0, double t1) const {
  DEEPBAT_CHECK(t1 >= t0, "Trace::slice: empty interval");
  const auto lo = std::lower_bound(times_.begin(), times_.end(), t0);
  const auto hi = std::lower_bound(times_.begin(), times_.end(), t1);
  return Trace(std::vector<double>(lo, hi));
}

std::vector<double> Trace::window_before(double t, std::size_t count,
                                         double pad_value) const {
  std::vector<double> out;
  out.reserve(count);
  const auto end =
      std::lower_bound(times_.begin(), times_.end(), t) - times_.begin();
  // Collect up to `count` gaps ending at index end-1, then reverse.
  for (std::ptrdiff_t i = end - 1; i >= 1 && out.size() < count; --i) {
    out.push_back(times_[static_cast<std::size_t>(i)] -
                  times_[static_cast<std::size_t>(i - 1)]);
  }
  std::reverse(out.begin(), out.end());
  if (out.size() < count) {
    out.insert(out.begin(), count - out.size(), pad_value);
  }
  return out;
}

std::vector<std::size_t> Trace::rate_histogram(double bin_width) const {
  DEEPBAT_CHECK(bin_width > 0.0, "rate_histogram: bin width must be positive");
  if (times_.empty()) return {};
  const double span = end_time() - start_time();
  const auto bins = static_cast<std::size_t>(std::floor(span / bin_width)) + 1;
  std::vector<std::size_t> counts(bins, 0);
  for (double t : times_) {
    auto b = static_cast<std::size_t>((t - start_time()) / bin_width);
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  return counts;
}

void Trace::append(const Trace& other) {
  if (other.empty()) return;
  DEEPBAT_CHECK(times_.empty() || other.times_.front() >= times_.back(),
                "Trace::append: would break monotonicity");
  times_.insert(times_.end(), other.times_.begin(), other.times_.end());
}

void Trace::save(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  DEEPBAT_CHECK(os.is_open(), "Trace::save: cannot open " + path);
  os.precision(12);
  for (double t : times_) os << t << '\n';
  DEEPBAT_CHECK(os.good(), "Trace::save: write failed");
}

Trace Trace::load(const std::string& path) {
  std::ifstream is(path);
  DEEPBAT_CHECK(is.is_open(), "Trace::load: cannot open " + path);
  std::vector<double> times;
  double t = 0.0;
  while (is >> t) times.push_back(t);
  return Trace(std::move(times));
}

Trace merge_traces(std::span<const Trace* const> traces) {
  std::size_t total = 0;
  for (const Trace* t : traces) {
    DEEPBAT_CHECK(t != nullptr, "merge_traces: null trace");
    total += t->size();
  }
  std::vector<double> merged;
  merged.reserve(total);
  std::vector<std::size_t> cursor(traces.size(), 0);
  while (merged.size() < total) {
    std::size_t best = traces.size();
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (cursor[i] >= traces[i]->size()) continue;
      if (best == traces.size() ||
          (*traces[i])[cursor[i]] < (*traces[best])[cursor[best]]) {
        best = i;  // strict < keeps equal timestamps input-ordered (stable)
      }
    }
    merged.push_back((*traces[best])[cursor[best]++]);
  }
  return Trace(std::move(merged));
}

Trace trace_from_interarrivals(std::span<const double> gaps,
                               double start_time) {
  std::vector<double> times;
  times.reserve(gaps.size() + 1);
  double t = start_time;
  times.push_back(t);
  for (double g : gaps) {
    DEEPBAT_CHECK(g >= 0.0, "trace_from_interarrivals: negative gap");
    t += g;
    times.push_back(t);
  }
  return Trace(std::move(times));
}

}  // namespace deepbat::workload
