#include "core/encoding.hpp"

#include <cmath>

#include "common/error.hpp"

namespace deepbat::core {

float encode_gap(double gap_seconds) {
  DEEPBAT_CHECK(gap_seconds >= 0.0, "encode_gap: negative gap");
  return static_cast<float>(std::log1p(gap_seconds * 1000.0));
}

std::vector<float> encode_window(std::span<const double> gaps) {
  std::vector<float> out;
  out.reserve(gaps.size());
  for (double g : gaps) out.push_back(encode_gap(g));
  return out;
}

std::vector<float> encode_features(const lambda::Config& config) {
  return {static_cast<float>(config.memory_mb),
          static_cast<float>(config.batch_size),
          static_cast<float>(config.timeout_s)};
}

std::vector<float> pack_target(const PredictionTarget& target) {
  std::vector<float> out;
  out.reserve(kTargetDim);
  out.push_back(static_cast<float>(target.cost_usd_per_request * kCostScale));
  for (double p : target.latency_s) out.push_back(static_cast<float>(p));
  return out;
}

PredictionTarget unpack_target(std::span<const float> row) {
  DEEPBAT_CHECK(row.size() == kTargetDim, "unpack_target: bad row size");
  PredictionTarget t;
  t.cost_usd_per_request = static_cast<double>(row[0]) / kCostScale;
  for (std::size_t i = 0; i < kPercentiles.size(); ++i) {
    t.latency_s[i] = static_cast<double>(row[1 + i]);
  }
  return t;
}

}  // namespace deepbat::core
