#pragma once
// Train-once / load-cached helper. The paper trains the surrogate offline
// once (on the first 12 hours of the Azure trace) and reuses it everywhere;
// this helper gives benches and examples the same workflow: the first call
// trains and saves the weights, later calls load them.

#include <filesystem>
#include <memory>

#include "core/dataset_builder.hpp"
#include "core/surrogate.hpp"
#include "core/trainer.hpp"

namespace deepbat::core {

struct PretrainSpec {
  SurrogateConfig surrogate;
  DatasetBuilderOptions dataset;
  TrainOptions train;
  /// Weights cache location.
  std::filesystem::path cache_path = "deepbat_surrogate.bin";
  bool force_retrain = false;
};

struct PretrainedModel {
  std::unique_ptr<Surrogate> surrogate;
  bool loaded_from_cache = false;
  TrainResult train_result;  // empty history when loaded from cache
};

/// Build/load a surrogate trained on `trace` with the given spec. The grid
/// is used both for feature standardization and for sampling training
/// configurations.
PretrainedModel ensure_pretrained(const workload::Trace& trace,
                                  const lambda::ConfigGrid& grid,
                                  const lambda::LambdaModel& model,
                                  const PretrainSpec& spec);

/// The shared "bench" spec: trained on the first 12 hours of the Azure-like
/// trace (paper §IV-B), with a budget scaled to run in seconds-to-minutes on
/// a laptop. Override epochs/samples via the DEEPBAT_TRAIN_EPOCHS and
/// DEEPBAT_TRAIN_SAMPLES environment variables for a full paper-scale run.
PretrainSpec bench_spec(const std::filesystem::path& cache_dir);

}  // namespace deepbat::core
