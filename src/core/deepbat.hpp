#pragma once
// Umbrella header: the public API of the DeepBAT library.
//
// Quickstart (see examples/quickstart.cpp for the runnable version):
//
//   using namespace deepbat;
//   lambda::LambdaModel model;                       // Lambda perf + cost
//   auto grid = lambda::ConfigGrid::standard();      // (M, B, T) space
//   auto trace = workload::azure_like({}, /*seed=*/1);
//
//   core::Surrogate surrogate({}, grid);             // paper Fig. 3 model
//   auto data = core::build_dataset(trace, grid, model, {});
//   core::train(surrogate, data, {});                // offline training
//
//   core::DeepBatController controller(surrogate, {.slo_s = 0.1});
//   auto run = sim::run_platform(trace, controller, model, {1024, 1, 0.0});
//
#include "batchlib/analytic.hpp"     // BATCH baseline: analytic engine
#include "batchlib/controller.hpp"   // BATCH baseline: hourly controller
#include "core/controller.hpp"       // DeepBAT controller (Fig. 2)
#include "core/dataset_builder.hpp"  // offline training-set construction
#include "core/decision_engine.hpp"  // staged control plane (parser ->
                                     // encoder -> scorer -> policy)
#include "core/encoding.hpp"         // input/target encodings
#include "core/optimizer.hpp"        // SLO-aware optimizer (Eq. 10)
#include "core/pretrained.hpp"       // train-once / load-cached helper
#include "core/surrogate.hpp"        // deep surrogate model (Fig. 3)
#include "core/trainer.hpp"          // training + fine-tuning (Eq. 7-9)
#include "core/vcr.hpp"              // SLO Violation Count Ratio (Eq. 11)
#include "lambda/model.hpp"          // Lambda performance & pricing model
#include "sim/batch_sim.hpp"         // ground-truth batching simulator
#include "sim/ground_truth.hpp"      // exhaustive ground-truth search
#include "sim/platform.hpp"          // controller-in-the-loop replay
#include "sim/runtime.hpp"           // multi-tenant runtime (batched ticks)
#include "workload/map_fit.hpp"      // MMPP(2) fitting (BATCH front-end)
#include "workload/map_process.hpp"  // Markovian arrival processes
#include "workload/synth.hpp"        // the four evaluation workloads
#include "workload/trace.hpp"        // arrival traces
