#include "core/controller.hpp"

#include "common/error.hpp"

namespace deepbat::core {

DeepBatController::DeepBatController(Surrogate& surrogate,
                                     DeepBatControllerOptions options)
    : surrogate_(surrogate),
      options_(std::move(options)),
      configs_(options_.grid.enumerate()) {
  DEEPBAT_CHECK(!configs_.empty(), "DeepBatController: empty grid");
}

void DeepBatController::set_gamma(double gamma) {
  DEEPBAT_CHECK(gamma >= 0.0 && gamma < 1.0,
                "DeepBatController: gamma out of [0, 1)");
  options_.gamma = gamma;
}

lambda::Config DeepBatController::decide(const workload::Trace& history,
                                         double now) {
  // Workload Parser: the last l inter-arrival times before `now`, padded if
  // the history is still short.
  const auto l = static_cast<std::size_t>(
      surrogate_.config().sequence_length);
  const auto gaps = history.window_before(now, l, options_.pad_gap_s);
  const auto encoded = encode_window(gaps);

  OptimizerOptions opt;
  opt.slo_s = options_.slo_s;
  opt.gamma = options_.gamma;
  OptimizationOutcome outcome = optimize(surrogate_, encoded, configs_, opt);

  ++decisions_;
  predict_seconds_ += outcome.predict_seconds;
  search_seconds_ += outcome.search_seconds;
  const lambda::Config chosen = outcome.choice.config;
  last_outcome_ = std::move(outcome);
  return chosen;
}

}  // namespace deepbat::core
