#include "core/controller.hpp"

namespace deepbat::core {

namespace {

DecisionEngineOptions engine_options(const DeepBatControllerOptions& options) {
  DecisionEngineOptions eo;
  eo.slo_s = options.slo_s;
  eo.gamma = options.gamma;
  eo.grid = options.grid;
  eo.backend = options.backend;
  eo.pad_gap_s = options.pad_gap_s;
  eo.encoder_cache_capacity = options.encoder_cache_capacity;
  eo.guard = options.guard;
  eo.scoring_precision = options.scoring_precision;
  return eo;
}

}  // namespace

DeepBatController::DeepBatController(const Surrogate& surrogate,
                                     DeepBatControllerOptions options)
    : engine_(surrogate, engine_options(options)) {}

lambda::Config DeepBatController::record(EngineDecision decision) {
  ++decisions_;
  predict_seconds_ += decision.encode_seconds + decision.score_seconds;
  search_seconds_ += decision.search_seconds;
  const lambda::Config chosen = decision.choice.config;
  OptimizationOutcome outcome;
  outcome.choice = decision.choice;
  outcome.predictions = std::move(decision.predictions);
  outcome.predict_seconds = decision.encode_seconds + decision.score_seconds;
  outcome.search_seconds = decision.search_seconds;
  last_outcome_ = std::move(outcome);
  return chosen;
}

lambda::Config DeepBatController::decide(const workload::Trace& history,
                                         double now) {
  return record(engine_.decide(history, now));
}

sim::SplitController::TickRequest DeepBatController::begin_tick(
    const workload::Trace& history, double now) {
  const DecisionEngine::Prepared prepared = engine_.begin(history, now);
  return TickRequest{prepared.needs_encoding, prepared.window,
                     prepared.bypassed, prepared.cached_encoding};
}

lambda::Config DeepBatController::finish_tick(
    std::span<const float> encoding) {
  return record(engine_.finish(encoding));
}

lambda::Config DeepBatController::finish_tick_scored(
    std::span<const float> encoding, std::span<const float> raw_predictions) {
  return record(engine_.finish_scored(encoding, raw_predictions));
}

void DeepBatController::save_state(sim::CheckpointWriter& w) const {
  engine_.save_state(w);
  w.u64(decisions_);
  w.f64(predict_seconds_);
  w.f64(search_seconds_);
}

void DeepBatController::restore_state(sim::CheckpointReader& r) {
  engine_.restore_state(r);
  decisions_ = static_cast<std::size_t>(r.u64());
  // Wall-clock totals restore for report continuity; they never feed back
  // into decisions, so they cannot perturb the replay.
  predict_seconds_ = r.f64();
  search_seconds_ = r.f64();
  last_outcome_.reset();
}

}  // namespace deepbat::core
