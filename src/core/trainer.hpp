#pragma once
// Offline training and fine-tuning of the surrogate (paper §III-D).
//
// Loss: L = alpha * MAPE + (1 - alpha) * Huber_delta (Eq. 9) with
// alpha = 0.05 and delta = 1, "intentionally defined to penalize more for
// those configurations that violate the SLO": samples whose true P95
// exceeds the SLO get their loss row up-weighted.

#include <functional>
#include <vector>

#include "core/surrogate.hpp"
#include "nn/optim.hpp"

namespace deepbat::core {

struct TrainOptions {
  int epochs = 100;         // paper: 100 epochs
  std::int64_t batch_size = 8;  // paper: batch size 8
  float learning_rate = 1e-3F;  // paper: Adam, lr 0.001
  float alpha = 0.05F;      // Eq. 9 weighting
  float huber_delta = 1.0F; // Eq. 7 delta
  double validation_fraction = 0.15;
  /// Extra loss weight on rows whose ground-truth P95 violates the SLO.
  float slo_violation_weight = 3.0F;
  double slo_s = 0.1;
  float grad_clip = 5.0F;
  /// Step-decay LR schedule: lr *= lr_decay_factor every lr_decay_every
  /// epochs (0 disables).
  int lr_decay_every = 15;
  float lr_decay_factor = 0.5F;
  std::uint64_t shuffle_seed = 7;
  /// Called after each epoch (epoch index, train loss, val MAPE %).
  std::function<void(int, double, double)> on_epoch;
};

struct EpochStats {
  double train_loss = 0.0;
  double validation_mape = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_validation_mape = 0.0;
  double seconds = 0.0;
};

/// Train in place. The dataset is split train/validation internally.
TrainResult train(Surrogate& model, const nn::Dataset& dataset,
                  const TrainOptions& options);

/// Fine-tune on a small OOD dataset for a few epochs (paper §III-D "Model
/// Fine-Tuning") — same loop, fewer epochs, typically a lower LR.
TrainResult fine_tune(Surrogate& model, const nn::Dataset& dataset,
                      int epochs = 15, float learning_rate = 5e-4F,
                      double slo_s = 0.1);

/// fine_tune with full control over the loop. The online learn::Retrainer
/// uses this form: it threads its own shuffle seed through so background
/// retraining stays bit-deterministic and pool-vs-inline identical.
TrainResult fine_tune(Surrogate& model, const nn::Dataset& dataset,
                      const TrainOptions& options);

/// Mean MAPE (%) of the model's predictions over a dataset — the
/// prediction-accuracy metric of paper Fig. 13.
double evaluate_mape(Surrogate& model, const nn::Dataset& dataset);

/// Penalty factor gamma (paper §III-D): MAPE between predicted and
/// simulated P95 over a dataset, as a fraction (not percent).
double estimate_gamma(Surrogate& model, const nn::Dataset& dataset);

}  // namespace deepbat::core
