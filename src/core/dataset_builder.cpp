#include "core/dataset_builder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace deepbat::core {

PredictionTarget simulate_target(std::span<const double> arrivals,
                                 const lambda::Config& config,
                                 const lambda::LambdaModel& model) {
  DEEPBAT_CHECK(!arrivals.empty(), "simulate_target: empty label window");
  const sim::SimResult result = sim::simulate_trace(arrivals, config, model);
  PredictionTarget target;
  target.cost_usd_per_request = result.cost_per_request();
  auto lats = result.latencies();
  std::sort(lats.begin(), lats.end());
  for (std::size_t i = 0; i < kPercentiles.size(); ++i) {
    target.latency_s[i] = quantile_sorted(lats, kPercentiles[i]);
  }
  return target;
}

nn::Dataset build_dataset(const workload::Trace& trace,
                          const lambda::ConfigGrid& grid,
                          const lambda::LambdaModel& model,
                          const DatasetBuilderOptions& options) {
  const auto gaps = trace.interarrivals();
  const auto l = static_cast<std::size_t>(options.sequence_length);
  DEEPBAT_CHECK(gaps.size() > l + options.label_arrivals + 2,
                "build_dataset: trace too short for window + label horizon");
  const auto configs = grid.enumerate();
  DEEPBAT_CHECK(!configs.empty(), "build_dataset: empty grid");

  // Draw all sampling decisions up front (deterministic), then label in
  // parallel — each sample touches only its own slice of the trace.
  Rng rng(options.seed);
  struct Draw {
    std::size_t window_start;
    std::size_t config_index;
  };
  std::vector<Draw> draws(options.samples);
  const std::size_t max_start = gaps.size() - l - options.label_arrivals - 1;
  for (auto& d : draws) {
    d.window_start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_start)));
    d.config_index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(configs.size()) - 1));
  }

  const auto times = trace.times();
  const auto samples = parallel_map<nn::Sample>(
      options.samples,
      [&](std::size_t s) {
        const Draw& d = draws[s];
        nn::Sample sample;
        sample.sequence = encode_window(
            {gaps.data() + d.window_start, l});
        const lambda::Config& config = configs[d.config_index];
        sample.features = encode_features(config);
        // Label horizon: the arrivals immediately after the window.
        // gaps[i] = times[i+1] - times[i], so window gaps
        // [window_start, window_start + l) end at arrival index
        // window_start + l.
        const std::size_t label_begin = d.window_start + l;
        sample.target = pack_target(simulate_target(
            {times.data() + label_begin, options.label_arrivals}, config,
            model));
        return sample;
      },
      /*grain=*/1);  // each sample runs a batching simulation — always split

  nn::Dataset dataset;
  dataset.reserve(samples.size());
  for (auto& s : samples) dataset.add(std::move(s));
  return dataset;
}

}  // namespace deepbat::core
