#pragma once
// The DeepBAT deep surrogate model (paper Fig. 3 / §III-D):
//
//   E_seq   = FeedForward(S)                      (Eq. 1 — here a Linear
//                                                  embedding of each gap)
//   E_pos   = PositionalEncoding(E_seq)
//   E_trans = TransformerEncoder(E_pos)           (Eq. 2, N = 2 layers)
//   E_p     = MeanPool(E_trans)
//   E_1     = Mask(MultiHeadAtt(E_p, E_p, E_p))   (Eq. 4 — pooled vector
//                                                  treated as a length-1
//                                                  sequence; the mask is
//                                                  trivial at length 1)
//   E_2     = FeedForward(Standardize(F))         (Eq. 5)
//   O       = FeedForward(Concat(E_1, E_2))       (Eq. 6)
//
// The model exposes a split forward path: encode_sequence() runs the whole
// sequence branch once per decision window, and predict_with_features()
// runs only the cheap feature branch + head per candidate configuration.
// This is what makes DeepBAT's online optimization milliseconds-fast while
// BATCH re-solves matrix equations per configuration (§IV-F).

#include <memory>
#include <optional>
#include <string_view>

#include "core/encoding.hpp"
#include "nn/data.hpp"
#include "nn/quant.hpp"
#include "nn/recurrent.hpp"
#include "nn/transformer.hpp"

namespace deepbat::core {

/// Sequence-encoder choice: the paper's Transformer (default) or the LSTM
/// baseline its motivation section argues against (compared head-to-head in
/// bench/abl_encoder).
enum class EncoderType { kTransformer, kLstm };

struct SurrogateConfig {
  EncoderType encoder = EncoderType::kTransformer;
  std::int64_t sequence_length = 256;  // paper §V: chosen balance point
  std::int64_t model_dim = 16;         // paper: embedding dimension 16
  std::int64_t num_heads = 4;
  std::int64_t ffn_hidden = 32;        // paper: hidden state 32
  std::int64_t encoder_layers = 2;     // paper: 2 encoder layers
  float dropout = 0.1F;
  std::int64_t feature_dim = 3;        // {M, B, T}
  std::int64_t feature_embed_dim = 16;
  std::int64_t output_dim = static_cast<std::int64_t>(kTargetDim);
  /// Eq. 4's extra multi-head attention over the pooled vector. Disabled
  /// only by the ablation study (bench/abl_pooled_attention).
  bool use_pooled_attention = true;
  std::uint64_t init_seed = 0xDEE9BA7ULL;
};

/// Feature standardization constants (paper Eq. 5's Standardize). Derived
/// deterministically from the config grid so training and serving agree.
struct FeatureStandardizer {
  std::vector<float> mean;
  std::vector<float> inv_std;

  static FeatureStandardizer from_grid(const lambda::ConfigGrid& grid);
  /// Standardize a raw feature tensor [batch, f] (returns a new tensor).
  nn::Tensor apply(const nn::Tensor& raw) const;
};

/// Arithmetic used by the fused grid-scoring pass (DESIGN.md §12).
///   kFp32 — exact: bit-identical to the composed autograd head, any batch.
///   kFp16 — the per-config GEMM runs on binary16-stored weights (fp32
///           math on the rounded values).
///   kInt8 — the per-config GEMM runs int8 x int8 -> int32 with symmetric
///           per-output-channel weight scales and per-row (dynamic or
///           calibrated) activation scales.
/// Both reduced precisions keep the live E_1 projection in fp32 — only the
/// [tenants * grid, hidden] -> outputs stage, the part that scales with the
/// grid, is quantized — so the error is bounded by one activation + one
/// weight rounding. All three are row-local and therefore shard-invariant.
enum class ScoringPrecision { kFp32, kFp16, kInt8 };

const char* to_string(ScoringPrecision precision);
/// Parse "fp32" / "fp16" / "int8" (CLI --precision values).
std::optional<ScoringPrecision> parse_scoring_precision(std::string_view name);

/// Immutable per-grid scoring state: the raw feature tensor, the feature
/// branch's output E_2, the head weights sliced for the fused pass, and —
/// for reduced precisions — the quantized weight images plus the cached
/// feature half of the first head layer. Built once per (grid, precision)
/// by Surrogate::make_scoring_cache; configs are immutable after
/// construction, so none of this is recomputed per tick.
///
/// Thread safety: scoring reads the cache const (per-call scratch lives in
/// the thread-local arena), so one cache may serve several runtime shards
/// concurrently. calibrate_scoring_cache mutates it and must happen-before
/// any concurrent scoring.
class GridScoringCache {
 public:
  GridScoringCache() = default;

  std::int64_t grid_size() const { return n_; }
  ScoringPrecision precision() const { return precision_; }
  /// Raw [n, feature_dim] features, encoded once at construction.
  const nn::Tensor& features() const { return features_; }
  /// True once a static activation scale has been calibrated (int8 path;
  /// uncalibrated caches quantize activations dynamically per row).
  bool calibrated() const { return hidden_scale_ > 0.0F; }
  float hidden_scale() const { return hidden_scale_; }

 private:
  friend class Surrogate;

  ScoringPrecision precision_ = ScoringPrecision::kFp32;
  std::int64_t n_ = 0;       // grid size
  nn::Tensor features_;      // [n, feature_dim] raw
  nn::Tensor e2_;            // [n, feature_embed_dim] feature-branch output
  nn::Tensor w1_;            // [model_dim + feature_embed_dim, hidden]:
                             // full head fc1, for the exact fp32 concat GEMM
  nn::Tensor w1_top_;        // [model_dim, hidden]: E_1 half of head fc1
  nn::Tensor w1_bot_;        // [feature_embed_dim, hidden]: E_2 half
  nn::Tensor b1_;            // [hidden]
  nn::Tensor w2_;            // [hidden, output_dim]
  nn::Tensor b2_;            // [output_dim]
  /// E_2 @ w1_bot + b1, cached for the reduced-precision paths: the feature
  /// half of the first head layer is constant across tenants AND ticks, so
  /// they only recompute the E_1 half per tick. (The exact fp32 path
  /// re-accumulates it instead, to preserve the composed path's summation
  /// order bit-for-bit.)
  nn::Tensor h_feat_;        // [n, hidden]
  nn::QuantizedMatrix w2_q_;  // int8 image of w2_
  nn::HalfMatrix w2_h_;       // fp16 image of w2_
  float hidden_scale_ = 0.0F;  // calibrated static activation scale
};

class Surrogate : public nn::Module {
 public:
  Surrogate(const SurrogateConfig& config, const lambda::ConfigGrid& grid);

  const SurrogateConfig& config() const { return config_; }

  /// Full forward pass for training.
  /// sequences: [batch, l, 1] encoded gaps; features: [batch, 3] raw.
  nn::Var forward(const nn::Var& sequences, const nn::Var& features);

  /// Sequence branch only: [batch, l, 1] -> pooled E_1 values [batch, d].
  /// Runs under NoGradGuard (no gradient tracking, dropout off), so it is
  /// callable on a const model; used by the online optimizer and the
  /// multi-tenant runtime's shared batched encoder.
  nn::Tensor encode_sequence(const nn::Tensor& sequences) const;

  /// Head only: E_1 rows [n, d] (typically one row broadcast n times) +
  /// raw features [n, 3] -> predictions [n, output_dim].
  nn::Tensor predict_with_features(const nn::Tensor& e1,
                                   const nn::Tensor& raw_features) const;

  /// Score every config against one already-encoded E_1 row [d] (the
  /// GridScorer stage). Builds a throwaway fp32 scoring cache per call;
  /// steady-state callers (GridScorer, the runtime's batch scorer) hold a
  /// GridScoringCache and use predict_grid_from_e1_batch instead.
  std::vector<PredictionTarget> predict_grid_from_e1(
      std::span<const float> e1_row,
      std::span<const lambda::Config> configs) const;

  /// Build the immutable scoring state for `configs` at `precision`:
  /// encodes the features once, runs the feature branch once, slices the
  /// head weights, and quantizes them as the precision requires.
  GridScoringCache make_scoring_cache(std::span<const lambda::Config> configs,
                                      ScoringPrecision precision) const;

  /// Calibrate the cache's static activation scale from a sample of
  /// windows (`count` concatenated length-l windows): encodes them, runs
  /// the fused pass in fp32, and records the absmax of the hidden
  /// activations. Until called, the int8 path quantizes dynamically per
  /// row (also deterministic and shard-invariant, one absmax pass slower).
  void calibrate_scoring_cache(GridScoringCache& cache,
                               std::span<const float> windows,
                               std::size_t count) const;

  /// The fused multi-tenant scoring pass: score `row_count` E_1 rows
  /// (concatenated, [row_count, model_dim]) against the cache's whole grid
  /// in one pass. `out` receives row_count * grid_size * output_dim floats,
  /// tenant-major (tenant r's grid occupies rows [r*n, (r+1)*n)). Row r of
  /// the result is bit-identical to scoring row r alone, at every
  /// precision — fp32 exactly reproduces the composed autograd head, and
  /// the quantized paths quantize activations row-locally.
  void predict_grid_from_e1_batch(std::span<const float> e1_rows,
                                  std::size_t row_count,
                                  const GridScoringCache& cache,
                                  std::span<float> out) const;

  /// Same pass, unpacked into PredictionTargets (resizes `out` to
  /// row_count * grid_size; reuses its capacity across calls).
  void predict_grid_from_e1_batch(std::span<const float> e1_rows,
                                  std::size_t row_count,
                                  const GridScoringCache& cache,
                                  std::vector<PredictionTarget>& out) const;

  /// Convenience: predict every config for a single encoded window
  /// (encode_sequence once + predict_grid_from_e1).
  std::vector<PredictionTarget> predict_grid(
      std::span<const float> encoded_window,
      std::span<const lambda::Config> configs) const;

  /// Deep copy for the online retrainer (learn/, DESIGN.md §14): a freshly
  /// constructed module with identical config, feature standardizer, and
  /// parameter values, returned in eval mode. The clone owns its weights,
  /// so fine-tuning it never perturbs the incumbent it was copied from.
  std::unique_ptr<Surrogate> clone() const;

  /// Overwrite every named parameter with `other`'s values. Module
  /// registration order is deterministic, so the parameter lists are
  /// checked pairwise by name and shape. Requires an identical
  /// architecture (same SurrogateConfig dimensions).
  void copy_parameters_from(const Surrogate& other);

  /// Record encoder self-attention of the last forward (paper Fig. 14).
  void set_record_attention(bool record);
  /// Aggregated attention received by each sequence position, averaged over
  /// heads and query positions, from the first encoder layer of the last
  /// recorded forward. Empty if recording was off.
  std::vector<float> last_attention_profile() const;

 private:
  nn::Var sequence_branch(const nn::Var& sequences) const;
  nn::Var head(const nn::Var& e1, const nn::Var& raw_features) const;

  SurrogateConfig config_;
  FeatureStandardizer standardizer_;
  Rng init_rng_;  // weight-init stream; must precede the layers
  nn::Linear seq_embed_;
  nn::PositionalEncoding pos_enc_;
  nn::TransformerEncoder encoder_;
  std::unique_ptr<nn::Lstm> lstm_;  // only when encoder == kLstm
  nn::MultiHeadAttention pooled_attention_;
  nn::FeedForward feature_ff_;
  nn::FeedForward output_ff_;
};

}  // namespace deepbat::core
