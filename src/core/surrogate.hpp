#pragma once
// The DeepBAT deep surrogate model (paper Fig. 3 / §III-D):
//
//   E_seq   = FeedForward(S)                      (Eq. 1 — here a Linear
//                                                  embedding of each gap)
//   E_pos   = PositionalEncoding(E_seq)
//   E_trans = TransformerEncoder(E_pos)           (Eq. 2, N = 2 layers)
//   E_p     = MeanPool(E_trans)
//   E_1     = Mask(MultiHeadAtt(E_p, E_p, E_p))   (Eq. 4 — pooled vector
//                                                  treated as a length-1
//                                                  sequence; the mask is
//                                                  trivial at length 1)
//   E_2     = FeedForward(Standardize(F))         (Eq. 5)
//   O       = FeedForward(Concat(E_1, E_2))       (Eq. 6)
//
// The model exposes a split forward path: encode_sequence() runs the whole
// sequence branch once per decision window, and predict_with_features()
// runs only the cheap feature branch + head per candidate configuration.
// This is what makes DeepBAT's online optimization milliseconds-fast while
// BATCH re-solves matrix equations per configuration (§IV-F).

#include <memory>

#include "core/encoding.hpp"
#include "nn/data.hpp"
#include "nn/recurrent.hpp"
#include "nn/transformer.hpp"

namespace deepbat::core {

/// Sequence-encoder choice: the paper's Transformer (default) or the LSTM
/// baseline its motivation section argues against (compared head-to-head in
/// bench/abl_encoder).
enum class EncoderType { kTransformer, kLstm };

struct SurrogateConfig {
  EncoderType encoder = EncoderType::kTransformer;
  std::int64_t sequence_length = 256;  // paper §V: chosen balance point
  std::int64_t model_dim = 16;         // paper: embedding dimension 16
  std::int64_t num_heads = 4;
  std::int64_t ffn_hidden = 32;        // paper: hidden state 32
  std::int64_t encoder_layers = 2;     // paper: 2 encoder layers
  float dropout = 0.1F;
  std::int64_t feature_dim = 3;        // {M, B, T}
  std::int64_t feature_embed_dim = 16;
  std::int64_t output_dim = static_cast<std::int64_t>(kTargetDim);
  /// Eq. 4's extra multi-head attention over the pooled vector. Disabled
  /// only by the ablation study (bench/abl_pooled_attention).
  bool use_pooled_attention = true;
  std::uint64_t init_seed = 0xDEE9BA7ULL;
};

/// Feature standardization constants (paper Eq. 5's Standardize). Derived
/// deterministically from the config grid so training and serving agree.
struct FeatureStandardizer {
  std::vector<float> mean;
  std::vector<float> inv_std;

  static FeatureStandardizer from_grid(const lambda::ConfigGrid& grid);
  /// Standardize a raw feature tensor [batch, f] (returns a new tensor).
  nn::Tensor apply(const nn::Tensor& raw) const;
};

class Surrogate : public nn::Module {
 public:
  Surrogate(const SurrogateConfig& config, const lambda::ConfigGrid& grid);

  const SurrogateConfig& config() const { return config_; }

  /// Full forward pass for training.
  /// sequences: [batch, l, 1] encoded gaps; features: [batch, 3] raw.
  nn::Var forward(const nn::Var& sequences, const nn::Var& features);

  /// Sequence branch only: [batch, l, 1] -> pooled E_1 values [batch, d].
  /// Runs under NoGradGuard (no gradient tracking, dropout off), so it is
  /// callable on a const model; used by the online optimizer and the
  /// multi-tenant runtime's shared batched encoder.
  nn::Tensor encode_sequence(const nn::Tensor& sequences) const;

  /// Head only: E_1 rows [n, d] (typically one row broadcast n times) +
  /// raw features [n, 3] -> predictions [n, output_dim].
  nn::Tensor predict_with_features(const nn::Tensor& e1,
                                   const nn::Tensor& raw_features) const;

  /// Score every config against one already-encoded E_1 row [d] (the
  /// GridScorer stage: broadcast + feature head, no sequence forward).
  std::vector<PredictionTarget> predict_grid_from_e1(
      std::span<const float> e1_row,
      std::span<const lambda::Config> configs) const;

  /// Convenience: predict every config for a single encoded window
  /// (encode_sequence once + predict_grid_from_e1).
  std::vector<PredictionTarget> predict_grid(
      std::span<const float> encoded_window,
      std::span<const lambda::Config> configs) const;

  /// Record encoder self-attention of the last forward (paper Fig. 14).
  void set_record_attention(bool record);
  /// Aggregated attention received by each sequence position, averaged over
  /// heads and query positions, from the first encoder layer of the last
  /// recorded forward. Empty if recording was off.
  std::vector<float> last_attention_profile() const;

 private:
  nn::Var sequence_branch(const nn::Var& sequences) const;
  nn::Var head(const nn::Var& e1, const nn::Var& raw_features) const;

  SurrogateConfig config_;
  FeatureStandardizer standardizer_;
  Rng init_rng_;  // weight-init stream; must precede the layers
  nn::Linear seq_embed_;
  nn::PositionalEncoding pos_enc_;
  nn::TransformerEncoder encoder_;
  std::unique_ptr<nn::Lstm> lstm_;  // only when encoder == kLstm
  nn::MultiHeadAttention pooled_attention_;
  nn::FeedForward feature_ff_;
  nn::FeedForward output_ff_;
};

}  // namespace deepbat::core
