#pragma once
// SLO Violation Count Ratio (paper Eq. 11): the fraction of observation
// windows ("request sequences") whose measured latency percentile exceeds
// the SLO. This is the headline robustness metric of Figs. 8 and 10.

#include <span>
#include <vector>

#include "sim/batch_sim.hpp"

namespace deepbat::core {

struct VcrOptions {
  double slo_s = 0.1;
  double percentile = 0.95;
  /// Length of one observation window (one "sequence" in Eq. 11).
  double window_s = 30.0;
};

/// VCR over [t0, t1): chop served requests into windows by arrival time,
/// mark a window violated when its latency percentile exceeds the SLO.
/// Windows with no requests are skipped (|S_t| counts only non-empty ones).
double vcr(const sim::SimResult& result, double t0, double t1,
           const VcrOptions& options);

/// Per-hour VCR series starting at `start` for `hours` hours (Fig. 8/10).
std::vector<double> hourly_vcr(const sim::SimResult& result, double start,
                               std::size_t hours, const VcrOptions& options);

}  // namespace deepbat::core
