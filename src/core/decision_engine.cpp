#include "core/decision_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "nn/arena.hpp"
#include "nn/autograd.hpp"
#include "obs/trace.hpp"

namespace deepbat::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------- parser --

WindowParser::WindowParser(std::size_t window_length, double pad_gap_s)
    : window_length_(window_length), pad_gap_s_(pad_gap_s) {
  DEEPBAT_CHECK(window_length_ > 0, "WindowParser: window length must be > 0");
  encoded_.resize(window_length_);
}

std::span<const float> WindowParser::parse(const workload::Trace& history,
                                           double now) {
  const auto gaps = history.window_before(now, window_length_, pad_gap_s_);
  for (std::size_t i = 0; i < window_length_; ++i) {
    encoded_[i] = encode_gap(gaps[i]);
  }
  return encoded_;
}

// --------------------------------------------------------------- encoder --

SequenceEncoder::SequenceEncoder(const Surrogate& surrogate,
                                 std::size_t cache_capacity)
    : surrogate_(&surrogate),
      capacity_(std::max<std::size_t>(cache_capacity, 1)) {
  auto& registry = obs::MetricsRegistry::instance();
  hit_counter_ = &registry.counter("core.encoder.cache_hit");
  miss_counter_ = &registry.counter("core.encoder.cache_miss");
  evict_counter_ = &registry.counter("core.encoder.cache_evict");
  size_gauge_ = &registry.gauge("core.encoder.cache_size");
}

std::size_t SequenceEncoder::KeyHash::operator()(
    const std::vector<float>& key) const {
  // FNV-1a over the float bit patterns; windows are produced by the same
  // deterministic encode path, so bitwise equality is the right notion.
  std::size_t h = 1469598103934665603ULL;
  for (const float v : key) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t SequenceEncoder::window_length() const {
  return static_cast<std::size_t>(surrogate_->config().sequence_length);
}

std::size_t SequenceEncoder::encoding_dim() const {
  return static_cast<std::size_t>(surrogate_->config().model_dim);
}

void SequenceEncoder::touch(Entry& entry) {
  if (entry.lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  }
}

const std::vector<float>* SequenceEncoder::lookup(
    std::span<const float> window) {
  key_.assign(window.begin(), window.end());
  const auto it = cache_.find(key_);
  if (it == cache_.end()) {
    ++misses_;
    miss_counter_->add();
    return nullptr;
  }
  ++hits_;
  hit_counter_->add();
  touch(it->second);
  return &it->second.e1;
}

std::span<const float> SequenceEncoder::insert(std::span<const float> window,
                                               std::span<const float> e1) {
  DEEPBAT_CHECK(window.size() == window_length(),
                "SequenceEncoder: window length mismatch");
  DEEPBAT_CHECK(e1.size() == encoding_dim(),
                "SequenceEncoder: encoding dimension mismatch");
  key_.assign(window.begin(), window.end());
  const auto it = cache_.find(key_);
  if (it != cache_.end()) {  // re-insert of a cached window: refresh in place
    it->second.e1.assign(e1.begin(), e1.end());
    touch(it->second);
    return it->second.e1;
  }
  if (cache_.size() >= capacity_) {  // evict the least-recently-used entry
    // Copy the key out first: erase() would otherwise be fed a reference
    // into the node it is destroying.
    const std::vector<float> victim = *lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++evictions_;
    evict_counter_->add();
  }
  auto [pos, inserted] = cache_.emplace(
      key_, Entry{std::vector<float>(e1.begin(), e1.end()), lru_.end()});
  lru_.push_front(&pos->first);
  pos->second.lru_pos = lru_.begin();
  size_gauge_->set(static_cast<double>(cache_.size()));
  return pos->second.e1;
}

void SequenceEncoder::forward_single(std::span<const float> window,
                                     std::span<float> out) const {
  DEEPBAT_CHECK(window.size() == window_length(),
                "SequenceEncoder: window length mismatch");
  DEEPBAT_CHECK(out.size() == encoding_dim(),
                "SequenceEncoder: output dimension mismatch");
  nn::NoGradGuard no_grad;
  nn::arena::Scope arena_scope;
  nn::Tensor seq({1, surrogate_->config().sequence_length, 1});
  std::copy(window.begin(), window.end(), seq.data());
  const nn::Tensor e1 = surrogate_->encode_sequence(seq);
  std::copy(e1.data(), e1.data() + out.size(), out.begin());
}

void SequenceEncoder::rebind(const Surrogate& surrogate) {
  DEEPBAT_CHECK(
      surrogate.config().sequence_length ==
              surrogate_->config().sequence_length &&
          surrogate.config().model_dim == surrogate_->config().model_dim,
      "SequenceEncoder: rebound surrogate changes the encoder dimensions");
  surrogate_ = &surrogate;
  cache_.clear();
  lru_.clear();
  size_gauge_->set(0.0);
}

void SequenceEncoder::save_state(sim::CheckpointWriter& w) const {
  w.u64(cache_.size());
  // Most-recently-used first: lru_ front to back.
  for (const std::vector<float>* key : lru_) {
    const auto it = cache_.find(*key);
    w.floats(*key);
    w.floats(it->second.e1);
  }
  w.u64(hits_);
  w.u64(misses_);
  w.u64(evictions_);
}

void SequenceEncoder::restore_state(sim::CheckpointReader& r) {
  cache_.clear();
  lru_.clear();
  const std::uint64_t n = r.u64();
  DEEPBAT_CHECK(n <= capacity_,
                "SequenceEncoder: checkpoint cache exceeds this encoder's "
                "capacity");
  std::vector<std::pair<std::vector<float>, std::vector<float>>> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    // Two reads in declared order (a single emplace_back(r.floats(),
    // r.floats()) would leave the order unspecified).
    std::vector<float> window = r.floats();
    std::vector<float> e1 = r.floats();
    DEEPBAT_CHECK(window.size() == window_length() &&
                      e1.size() == encoding_dim(),
                  "SequenceEncoder: checkpoint entry dimensions do not match "
                  "this encoder's surrogate");
    entries.emplace_back(std::move(window), std::move(e1));
  }
  // Oldest first, so push_front rebuilds the saved recency order exactly.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    auto [pos, inserted] = cache_.emplace(
        std::move(it->first), Entry{std::move(it->second), lru_.end()});
    DEEPBAT_CHECK(inserted,
                  "SequenceEncoder: duplicate window in checkpoint cache");
    lru_.push_front(&pos->first);
    pos->second.lru_pos = lru_.begin();
  }
  hits_ = static_cast<std::size_t>(r.u64());
  misses_ = static_cast<std::size_t>(r.u64());
  evictions_ = static_cast<std::size_t>(r.u64());
  size_gauge_->set(static_cast<double>(cache_.size()));
}

// ---------------------------------------------------------------- scorer --

GridScorer::GridScorer(const Surrogate& surrogate,
                       std::vector<lambda::Config> configs,
                       ScoringPrecision precision)
    : surrogate_(&surrogate), configs_(std::move(configs)) {
  DEEPBAT_CHECK(!configs_.empty(), "GridScorer: empty config grid");
  // Feature branch + head-weight slices (+ quantized images) are computed
  // once here; score() only runs the per-tick fused pass.
  cache_ = surrogate_->make_scoring_cache(configs_, precision);
}

std::span<const PredictionTarget> GridScorer::score(
    std::span<const float> e1) const {
  surrogate_->predict_grid_from_e1_batch(e1, 1, cache_, scored_);
  return scored_;
}

std::span<const PredictionTarget> GridScorer::unpack(
    std::span<const float> raw) const {
  const std::size_t n = configs_.size();
  DEEPBAT_CHECK(raw.size() == n * kTargetDim,
                "GridScorer: raw prediction size mismatch");
  scored_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scored_[i] = unpack_target(raw.subspan(i * kTargetDim, kTargetDim));
  }
  return scored_;
}

void GridScorer::calibrate(std::span<const float> windows, std::size_t count) {
  surrogate_->calibrate_scoring_cache(cache_, windows, count);
}

void GridScorer::rebind(const Surrogate& surrogate) {
  DEEPBAT_CHECK(surrogate.config().model_dim == surrogate_->config().model_dim,
                "GridScorer: rebound surrogate changes the encoding dim");
  surrogate_ = &surrogate;
  cache_ = surrogate_->make_scoring_cache(configs_, cache_.precision());
}

// ---------------------------------------------------------------- engine --

namespace {

/// Backend override (DESIGN.md §13): an engine bound to a backend scores
/// that backend's own grid, never the generic CPU one.
DecisionEngineOptions resolve_grid(DecisionEngineOptions options) {
  if (options.backend != nullptr) {
    options.grid = options.backend->config_grid();
  }
  return options;
}

}  // namespace

DecisionEngine::DecisionEngine(const Surrogate& surrogate,
                               DecisionEngineOptions options)
    : options_(resolve_grid(std::move(options))),
      parser_(static_cast<std::size_t>(surrogate.config().sequence_length),
              options_.pad_gap_s),
      encoder_(surrogate, options_.encoder_cache_capacity),
      scorer_(surrogate, options_.grid.enumerate(),
              options_.scoring_precision) {
  DEEPBAT_CHECK(options_.gamma >= 0.0 && options_.gamma < 1.0,
                "DecisionEngine: gamma out of [0, 1)");
  auto& registry = obs::MetricsRegistry::instance();
  parse_hist_ = &registry.histogram("core.engine.parse_seconds");
  encode_hist_ = &registry.histogram("core.engine.encode_seconds");
  score_hist_ = &registry.histogram("core.engine.score_seconds");
  search_hist_ = &registry.histogram("core.engine.search_seconds");
  trip_counter_ = &registry.counter("core.engine.fallback_trip");
  fallback_counter_ = &registry.counter("core.engine.fallback_decision");
  reset_counter_ = &registry.counter("core.engine.fallback_reset");
  // Cold fallback before any decision succeeded: the most conservative grid
  // point — max memory (fastest service), smallest batch, shortest timeout
  // (least batching delay). The grid is a cross product, so this combination
  // is always a member.
  conservative_ = scorer_.configs().front();
  for (const lambda::Config& c : scorer_.configs()) {
    conservative_.memory_mb = std::max(conservative_.memory_mb, c.memory_mb);
    conservative_.batch_size = std::min(conservative_.batch_size, c.batch_size);
    conservative_.timeout_s = std::min(conservative_.timeout_s, c.timeout_s);
  }
}

bool DecisionEngine::guard_ok(std::span<const PredictionTarget> predictions,
                              const SurrogateGuardOptions& guard) {
  for (const PredictionTarget& p : predictions) {
    if (!std::isfinite(p.cost_usd_per_request) ||
        p.cost_usd_per_request < guard.cost_floor_usd) {
      return false;
    }
    double prev = -std::numeric_limits<double>::infinity();
    for (const double v : p.latency_s) {
      if (!std::isfinite(v) || v < prev - guard.monotone_margin_s) {
        return false;
      }
      prev = v;
    }
  }
  return true;
}

void DecisionEngine::trip_breaker() {
  breaker_ = options_.guard.cooldown_ticks > 0 ? BreakerState::kOpen
                                               : BreakerState::kHalfOpen;
  cooldown_left_ = options_.guard.cooldown_ticks;
  ++breaker_trips_;
  trip_counter_->add();
}

EngineDecision DecisionEngine::fallback_decision() {
  EngineDecision decision;
  decision.fallback = true;
  decision.choice.config = last_good_.value_or(conservative_);
  decision.choice.feasible = false;
  ++fallback_decisions_;
  fallback_counter_->add();
  return decision;
}

void DecisionEngine::set_gamma(double gamma) {
  DEEPBAT_CHECK(gamma >= 0.0 && gamma < 1.0,
                "DecisionEngine: gamma out of [0, 1)");
  options_.gamma = gamma;
}

void DecisionEngine::rebind_surrogate(const Surrogate& surrogate) {
  DEEPBAT_CHECK(!pending_,
                "DecisionEngine: rebind_surrogate() between begin()/finish()");
  DEEPBAT_CHECK(static_cast<std::size_t>(surrogate.config().sequence_length) ==
                    parser_.window_length(),
                "DecisionEngine: rebound surrogate changes the window length");
  encoder_.rebind(surrogate);
  scorer_.rebind(surrogate);
  // HalfOpen, not Closed: the next decision probes the new model once; the
  // guard either confirms it (breaker closes, reset counted) or re-trips.
  breaker_ = BreakerState::kHalfOpen;
  cooldown_left_ = 0;
}

void DecisionEngine::report_staleness() {
  DEEPBAT_CHECK(!pending_,
                "DecisionEngine: report_staleness() between begin()/finish()");
  if (!options_.guard.enabled || breaker_ != BreakerState::kClosed) return;
  trip_breaker();
}

DecisionEngine::Prepared DecisionEngine::begin(const workload::Trace& history,
                                               double now) {
  DEEPBAT_CHECK(!pending_, "DecisionEngine: begin() called twice");
  pending_ = true;
  if (options_.guard.enabled && breaker_ == BreakerState::kOpen) {
    // Breaker open: skip parse/cache/encode entirely; finish() serves the
    // fallback config. Ticks spent here are neither hits nor misses.
    pending_bypass_ = true;
    return Prepared{false, {}, true, {}};
  }
  pending_bypass_ = false;
  obs::ScopedTimer parse_timer(*parse_hist_);
  obs::Span span("core.engine.parse");
  pending_window_ = parser_.parse(history, now);
  const std::vector<float>* cached = encoder_.lookup(pending_window_);
  if (cached != nullptr) {
    pending_hit_ = true;
    pending_e1_ = *cached;
    // Expose the cached row so a batching runtime can fold this tenant into
    // its fused scoring pass. The span stays valid: the entry cannot be
    // evicted before finish() — eviction only happens on insert, and the
    // engine inserts at most once per begin()/finish() pair, on a miss.
    return Prepared{false, {}, false, pending_e1_};
  }
  pending_hit_ = false;
  return Prepared{true, pending_window_, false, {}};
}

EngineDecision DecisionEngine::finish(std::span<const float> encoding) {
  DEEPBAT_CHECK(pending_, "DecisionEngine: finish() without begin()");
  pending_ = false;

  if (pending_bypass_) {
    pending_bypass_ = false;
    if (--cooldown_left_ == 0) breaker_ = BreakerState::kHalfOpen;
    return fallback_decision();
  }

  std::span<const float> e1;
  if (pending_hit_) {
    e1 = pending_e1_;
  } else {
    DEEPBAT_CHECK(encoding.size() == encoder_.encoding_dim(),
                  "DecisionEngine: finish() expected an encoding row");
    // Score from the caller's row first; it is only inserted into the
    // window cache inside complete(), once the guard has accepted the
    // predictions, so a poisoned encoding can never be served from the
    // cache later.
    e1 = encoding;
  }

  std::span<const PredictionTarget> scored;
  double score_seconds = 0.0;
  {
    obs::Span span("core.engine.score");
    const auto score_start = std::chrono::steady_clock::now();
    scored = scorer_.score(e1);
    score_seconds = seconds_since(score_start);
  }
  score_hist_->observe(score_seconds);
  return complete(encoding, scored, score_seconds);
}

EngineDecision DecisionEngine::finish_scored(
    std::span<const float> encoding, std::span<const float> raw_predictions) {
  DEEPBAT_CHECK(pending_, "DecisionEngine: finish_scored() without begin()");
  DEEPBAT_CHECK(!pending_bypass_,
                "DecisionEngine: finish_scored() on a bypassed tick");
  pending_ = false;
  if (!pending_hit_) {
    DEEPBAT_CHECK(encoding.size() == encoder_.encoding_dim(),
                  "DecisionEngine: finish_scored() expected an encoding row");
  }
  // The fused batch pass already scored this tenant's grid slice; unpacking
  // into the scorer's scratch is all that remains of the scoring stage.
  // The shard-level batch_score histogram carries the fused timing, so the
  // per-decision score_seconds stays 0 here (like encode_seconds on a
  // batched encode).
  const std::span<const PredictionTarget> scored =
      scorer_.unpack(raw_predictions);
  return complete(encoding, scored, 0.0);
}

EngineDecision DecisionEngine::complete(
    std::span<const float> encoding,
    std::span<const PredictionTarget> scored, double score_seconds) {
  EngineDecision decision;
  decision.cache_hit = pending_hit_;
  decision.score_seconds = score_seconds;

  if (options_.guard.enabled && !guard_ok(scored, options_.guard)) {
    trip_breaker();
    EngineDecision fallback = fallback_decision();
    fallback.cache_hit = decision.cache_hit;
    fallback.score_seconds = decision.score_seconds;
    // Keep the rejected predictions visible to callers for diagnostics.
    fallback.predictions.assign(scored.begin(), scored.end());
    return fallback;
  }
  if (!pending_hit_) {
    // The cache stores its own copy; the runtime's batch buffer is reused.
    encoder_.insert(pending_window_, encoding);
  }
  if (breaker_ == BreakerState::kHalfOpen) {
    breaker_ = BreakerState::kClosed;
    ++breaker_resets_;
    reset_counter_->add();
  }

  OptimizerOptions opt;
  opt.slo_s = options_.slo_s;
  opt.gamma = options_.gamma;
  opt.percentile_index = options_.percentile_index;
  {
    obs::Span span("core.engine.search");
    const auto search_start = std::chrono::steady_clock::now();
    decision.choice = select_config(scored, scorer_.configs(), opt);
    decision.search_seconds = seconds_since(search_start);
  }
  search_hist_->observe(decision.search_seconds);
  // EngineDecision owns its prediction vector (callers move it into
  // OptimizationOutcome), so the scorer's scratch is copied out here — the
  // one per-tick PredictionTarget copy the public API mandates.
  decision.predictions.assign(scored.begin(), scored.end());
  last_good_ = decision.choice.config;
  return decision;
}

void DecisionEngine::save_state(sim::CheckpointWriter& w) const {
  DEEPBAT_CHECK(!pending_,
                "DecisionEngine: save_state() between begin()/finish()");
  encoder_.save_state(w);
  w.u8(static_cast<std::uint8_t>(breaker_));
  w.u64(cooldown_left_);
  w.boolean(last_good_.has_value());
  if (last_good_.has_value()) sim::save_config(w, *last_good_);
  w.u64(breaker_trips_);
  w.u64(breaker_resets_);
  w.u64(fallback_decisions_);
}

void DecisionEngine::restore_state(sim::CheckpointReader& r) {
  DEEPBAT_CHECK(!pending_,
                "DecisionEngine: restore_state() between begin()/finish()");
  encoder_.restore_state(r);
  const std::uint8_t breaker = r.u8();
  DEEPBAT_CHECK(breaker <= static_cast<std::uint8_t>(BreakerState::kHalfOpen),
                "DecisionEngine: corrupt breaker state in checkpoint");
  breaker_ = static_cast<BreakerState>(breaker);
  cooldown_left_ = static_cast<std::size_t>(r.u64());
  last_good_.reset();
  if (r.boolean()) last_good_ = sim::restore_config(r);
  breaker_trips_ = static_cast<std::size_t>(r.u64());
  breaker_resets_ = static_cast<std::size_t>(r.u64());
  fallback_decisions_ = static_cast<std::size_t>(r.u64());
}

EngineDecision DecisionEngine::decide(const workload::Trace& history,
                                      double now) {
  const Prepared prepared = begin(history, now);
  if (!prepared.needs_encoding) return finish({});
  e1_scratch_.resize(encoder_.encoding_dim());  // member scratch: no per-tick
                                                // allocation on misses
  double encode_seconds = 0.0;
  {
    obs::Span span("core.engine.encode");
    const auto encode_start = std::chrono::steady_clock::now();
    encoder_.forward_single(prepared.window, e1_scratch_);
    encode_seconds = seconds_since(encode_start);
  }
  encode_hist_->observe(encode_seconds);
  EngineDecision decision = finish(e1_scratch_);
  decision.encode_seconds = encode_seconds;
  return decision;
}

// --------------------------------------------------------- batch encoder --

std::size_t SurrogateBatchEncoder::window_length() const {
  return static_cast<std::size_t>(surrogate_.config().sequence_length);
}

std::size_t SurrogateBatchEncoder::encoding_dim() const {
  return static_cast<std::size_t>(surrogate_.config().model_dim);
}

void SurrogateBatchEncoder::encode(std::span<const float> windows,
                                   std::size_t count, std::span<float> out) {
  const std::size_t l = window_length();
  const std::size_t d = encoding_dim();
  DEEPBAT_CHECK(count > 0, "SurrogateBatchEncoder: empty batch");
  DEEPBAT_CHECK(windows.size() == count * l,
                "SurrogateBatchEncoder: window buffer size mismatch");
  DEEPBAT_CHECK(out.size() == count * d,
                "SurrogateBatchEncoder: output buffer size mismatch");
  nn::NoGradGuard no_grad;
  nn::arena::Scope arena_scope;
  nn::Tensor seq({static_cast<std::int64_t>(count),
                  surrogate_.config().sequence_length, 1});
  std::copy(windows.begin(), windows.end(), seq.data());
  const nn::Tensor e1 = surrogate_.encode_sequence(seq);
  std::copy(e1.data(), e1.data() + out.size(), out.begin());
  count_call(count);
}

// ---------------------------------------------------------- batch scorer --

SurrogateBatchScorer::SurrogateBatchScorer(const Surrogate& surrogate,
                                           std::vector<lambda::Config> configs,
                                           ScoringPrecision precision)
    : surrogate_(surrogate), configs_(std::move(configs)) {
  DEEPBAT_CHECK(!configs_.empty(), "SurrogateBatchScorer: empty config grid");
  cache_ = surrogate_.make_scoring_cache(configs_, precision);
}

std::size_t SurrogateBatchScorer::encoding_dim() const {
  return static_cast<std::size_t>(surrogate_.config().model_dim);
}

std::size_t SurrogateBatchScorer::grid_size() const {
  return configs_.size();
}

std::size_t SurrogateBatchScorer::target_dim() const { return kTargetDim; }

void SurrogateBatchScorer::score(std::span<const float> e1_rows,
                                 std::size_t count, std::span<float> out) {
  surrogate_.predict_grid_from_e1_batch(e1_rows, count, cache_, out);
  count_call(count);
}

void SurrogateBatchScorer::calibrate(std::span<const float> windows,
                                     std::size_t count) {
  surrogate_.calibrate_scoring_cache(cache_, windows, count);
}

}  // namespace deepbat::core
