#pragma once
// The staged DeepBAT control plane (paper Fig. 2, restructured as an
// explicit pipeline):
//
//   WindowParser     — slice the last l inter-arrival gaps before `now`
//                      from the history, left-pad short windows, encode.
//   SequenceEncoder  — the expensive stage: one Surrogate::encode_sequence
//                      per tick, behind a window-keyed cache so identical /
//                      idle windows skip the Transformer forward entirely.
//   GridScorer       — the cheap per-config head: broadcast E_1 over the
//                      candidate grid and predict (cost, percentiles).
//   Policy           — gamma-tightened feasibility scan + cost argmin
//                      (select_config / common GridSearch).
//
// The engine exposes both a one-shot decide() and a split begin()/finish()
// pair; the split form lets sim::Runtime batch the encoder stage of many
// tenants into a single forward (one [k, l, 1] encode_sequence per control
// tick for the whole fleet). DeepBatController is a thin adapter over this
// class.

#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/optimizer.hpp"
#include "obs/metrics.hpp"
#include "sim/runtime.hpp"

namespace deepbat::core {

/// Stage 1 — the Workload Parser's window slicing + padding + encoding.
class WindowParser {
 public:
  WindowParser(std::size_t window_length, double pad_gap_s);

  /// The encoded window for a decision at `now`. The returned span points
  /// into an internal buffer that stays valid until the next parse().
  std::span<const float> parse(const workload::Trace& history, double now);

  std::size_t window_length() const { return window_length_; }
  double pad_gap_s() const { return pad_gap_s_; }

 private:
  std::size_t window_length_;
  double pad_gap_s_;
  std::vector<float> encoded_;
};

/// Stage 2 — encode-once with a window-keyed LRU cache. A control tick over
/// an idle or repeating workload re-parses the identical window; the cache
/// turns those ticks into O(l) lookups instead of Transformer forwards.
/// When full, the least-recently-used entry is evicted; recency depends
/// only on the probe/insert sequence, so eviction (like everything else in
/// the engine) is deterministic. Probes and evictions also feed the
/// core.encoder.* registry metrics (DESIGN.md §9).
class SequenceEncoder {
 public:
  SequenceEncoder(const Surrogate& surrogate, std::size_t cache_capacity);

  /// Cached E_1 row for `window`, or nullptr on a miss (counts the probe).
  /// A hit promotes the entry to most-recently-used.
  const std::vector<float>* lookup(std::span<const float> window);

  /// Store an externally computed E_1 row (e.g. from the runtime's shared
  /// batched forward) and return a stable span of the cached copy. When
  /// the cache is full the least-recently-used entry is evicted first.
  std::span<const float> insert(std::span<const float> window,
                                std::span<const float> e1);

  /// Encode one window with a single [1, l, 1] forward (no cache insert;
  /// callers pair this with insert()).
  void forward_single(std::span<const float> window,
                      std::span<float> out) const;

  /// Point the encoder at a new surrogate version (learn/ hot-swap,
  /// DESIGN.md §14). Every cached E_1 row was computed by the old weights,
  /// so the cache is dropped wholesale; the cumulative hit/miss/evict
  /// counters survive — they describe the tenant, not the model. The new
  /// surrogate must share sequence_length and model_dim with the old one.
  void rebind(const Surrogate& surrogate);

  /// Checkpoint the cache contents and cumulative probe counters
  /// (DESIGN.md §16). Entries are written most-recently-used first;
  /// restore_state() rebuilds the identical recency order (and therefore
  /// the identical future eviction sequence) by re-inserting oldest-first.
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

  std::size_t window_length() const;
  std::size_t encoding_dim() const;
  std::size_t cache_hits() const { return hits_; }
  std::size_t cache_misses() const { return misses_; }
  std::size_t cache_evictions() const { return evictions_; }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_capacity() const { return capacity_; }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<float>& key) const;
  };
  /// Cached row plus its recency-list position. The list stores pointers to
  /// the map keys (node-stable in unordered_map), so a window is held once.
  struct Entry {
    std::vector<float> e1;
    std::list<const std::vector<float>*>::iterator lru_pos;
  };

  void touch(Entry& entry);  // move to most-recently-used

  const Surrogate* surrogate_;  // rebindable (hot-swap); never null
  std::size_t capacity_;
  std::unordered_map<std::vector<float>, Entry, KeyHash> cache_;
  std::list<const std::vector<float>*> lru_;  // front = most recent
  std::vector<float> key_;  // scratch, reused across probes
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  obs::Counter* hit_counter_;    // core.encoder.cache_hit
  obs::Counter* miss_counter_;   // core.encoder.cache_miss
  obs::Counter* evict_counter_;  // core.encoder.cache_evict
  obs::Gauge* size_gauge_;       // core.encoder.cache_size
};

/// Stage 3 — per-config scoring off one E_1 row (the millisecond path the
/// paper's §IV-F speedup rests on). Holds a GridScoringCache so the feature
/// branch, head-weight slices, and (for reduced precisions) the quantized
/// weight images are computed once at construction instead of per tick, and
/// a PredictionTarget scratch buffer so steady-state scoring allocates
/// nothing (DESIGN.md §12).
class GridScorer {
 public:
  GridScorer(const Surrogate& surrogate, std::vector<lambda::Config> configs,
             ScoringPrecision precision = ScoringPrecision::kFp32);

  /// Score the grid against one E_1 row. The returned span points into the
  /// scorer's scratch buffer and stays valid until the next score() /
  /// unpack() call on this scorer.
  std::span<const PredictionTarget> score(std::span<const float> e1) const;

  /// Unpack raw fused-scoring output (grid_size * kTargetDim floats, e.g.
  /// one tenant's slice of a runtime batch) into the scratch buffer.
  std::span<const PredictionTarget> unpack(std::span<const float> raw) const;

  /// Calibrate the cache's static int8 activation scale (see
  /// Surrogate::calibrate_scoring_cache). No-op observable effect at fp32.
  void calibrate(std::span<const float> windows, std::size_t count);

  /// Point the scorer at a new surrogate version (learn/ hot-swap): the
  /// precomputed feature branch / head slices / quantized images all came
  /// from the old weights, so the scoring cache is rebuilt from scratch at
  /// the same precision. Any int8 calibration is recomputed implicitly.
  void rebind(const Surrogate& surrogate);

  const std::vector<lambda::Config>& configs() const { return configs_; }
  ScoringPrecision precision() const { return cache_.precision(); }
  const GridScoringCache& cache() const { return cache_; }

 private:
  const Surrogate* surrogate_;  // rebindable (hot-swap); never null
  std::vector<lambda::Config> configs_;
  GridScoringCache cache_;
  mutable std::vector<PredictionTarget> scored_;  // reused across ticks
};

/// Sanity bounds on surrogate output (DESIGN.md §11). A prediction batch
/// violating them trips the engine's circuit breaker: the engine stops
/// trusting the surrogate for `cooldown_ticks` decisions and falls back to
/// the last-known-good configuration (cold fallback: the most conservative
/// grid point) instead of chasing garbage.
///
/// The default margins are deliberately loose: an UNTRAINED surrogate
/// legitimately emits small negative costs (~1e-6 USD after the 1e6 output
/// scaling) and percentile vectors that wobble by a second or two, and the
/// training/eval tests exercise exactly that regime. The breaker is for
/// structurally broken output — NaN/Inf (always trips), wildly negative
/// cost, grossly decreasing percentile curves — not for model error.
struct SurrogateGuardOptions {
  bool enabled = true;
  /// Trip when any predicted cost_usd_per_request is below this.
  double cost_floor_usd = -1e-3;
  /// Trip when latency_s[i] < latency_s[i-1] - margin for any i (the
  /// percentile vector must be monotone up to this tolerance).
  double monotone_margin_s = 10.0;
  /// Decisions served from the fallback config while the breaker is open;
  /// after the cooldown one probe decision re-runs the surrogate
  /// (half-open) and either closes the breaker or re-trips it.
  std::size_t cooldown_ticks = 4;
};

struct DecisionEngineOptions {
  double slo_s = 0.1;
  double gamma = 0.0;  // penalty factor (see §III-D); set after fine-tuning
  lambda::ConfigGrid grid = lambda::ConfigGrid::standard();
  /// Heterogeneous serving backend (DESIGN.md §13). When set it WINS over
  /// `grid`: the engine scores this backend's own config_grid(), so a
  /// GPU-tier engine never scores CPU configs — the capacity knob means
  /// vCPU-share MB on one backend and SM% on the other. Borrowed; the
  /// caller keeps it alive for the engine's lifetime.
  const lambda::Backend* backend = nullptr;
  /// Gap value used to left-pad windows with fewer arrivals than l
  /// (paper §III-A: "techniques for padding ... can be used"). A large gap
  /// reads as "no traffic".
  double pad_gap_s = 10.0;
  std::size_t percentile_index = kSloPercentileIndex;
  /// Entries held by the encoder's window cache; when full, the
  /// least-recently-used window is evicted (true LRU since PR 3).
  std::size_t encoder_cache_capacity = 512;
  /// Surrogate output guardrails + circuit breaker (DESIGN.md §11).
  SurrogateGuardOptions guard;
  /// Arithmetic of the grid-scoring stage (DESIGN.md §12). kFp32 is
  /// bit-identical to the composed surrogate head; kFp16/kInt8 trade a
  /// bounded prediction error for a faster per-config GEMM.
  ScoringPrecision scoring_precision = ScoringPrecision::kFp32;
};

struct EngineDecision {
  OptimizedChoice choice;
  /// Surrogate predictions for the full grid (same order as configs()).
  /// On a fallback decision these are the REJECTED predictions when the
  /// guard tripped this tick, empty when the breaker bypassed the surrogate.
  std::vector<PredictionTarget> predictions;
  /// True when the surrogate was not trusted for this decision: the choice
  /// is the last-known-good (or conservative) config, not an optimum.
  bool fallback = false;
  bool cache_hit = false;
  double encode_seconds = 0.0;  // 0 on a cache hit or a batched encode
  double score_seconds = 0.0;
  double search_seconds = 0.0;
};

class DecisionEngine {
 public:
  DecisionEngine(const Surrogate& surrogate, DecisionEngineOptions options);

  /// One-shot decision: parse -> encode (cache / single forward) -> score
  /// -> select.
  EngineDecision decide(const workload::Trace& history, double now);

  /// Split-phase decision for the multi-tenant runtime: begin() parses and
  /// probes the cache; when it asks for an encoding, the caller computes it
  /// (possibly batched with other tenants) and passes the E_1 row to
  /// finish(). begin()/finish() must alternate strictly.
  struct Prepared {
    bool needs_encoding = false;
    std::span<const float> window;  // valid until finish() returns
    /// True when the circuit breaker is open: parse/encode/score are all
    /// skipped and finish() returns the fallback decision.
    bool bypassed = false;
    /// On a window-cache hit: the cached E_1 row, so a batching runtime can
    /// include this tenant in its fused grid-scoring pass without
    /// re-encoding. Valid until finish()/finish_scored() returns.
    std::span<const float> cached_encoding;
  };
  Prepared begin(const workload::Trace& history, double now);
  EngineDecision finish(std::span<const float> encoding);

  /// finish() variant for runtimes that already scored the grid through the
  /// fused batch pass (SurrogateBatchScorer): `raw_predictions` holds this
  /// tenant's grid slice (configs().size() * kTargetDim floats). The guard,
  /// cache-insert ordering (guard BEFORE insert), breaker transitions, and
  /// policy stage are identical to finish(); only the scoring stage is
  /// skipped. Must not be called on a bypassed tick (use finish()).
  EngineDecision finish_scored(std::span<const float> encoding,
                               std::span<const float> raw_predictions);

  /// Calibrate the scorer's static int8 activation scale from sample
  /// windows (`count` concatenated length-l windows). Optional: without it
  /// the int8 path quantizes activations dynamically per row.
  void calibrate_scoring(std::span<const float> windows, std::size_t count) {
    scorer_.calibrate(windows, count);
  }
  ScoringPrecision scoring_precision() const { return scorer_.precision(); }

  /// True iff `predictions` pass the guard's sanity bounds (all entries
  /// finite, cost above the floor, percentile vectors monotone within the
  /// margin). Exposed for tests and external validators.
  static bool guard_ok(std::span<const PredictionTarget> predictions,
                       const SurrogateGuardOptions& guard);
  static bool guard_ok(std::initializer_list<PredictionTarget> predictions,
                       const SurrogateGuardOptions& guard) {
    return guard_ok(
        std::span<const PredictionTarget>(predictions.begin(),
                                          predictions.size()),
        guard);
  }

  /// Hot-swap the surrogate behind the engine (learn/ versioned store,
  /// DESIGN.md §14): the encoder drops its now-stale window cache, the
  /// scorer rebuilds its precomputed grid cache from the new weights, and
  /// the breaker moves to HalfOpen — the swap is an assertion that the new
  /// model is better, not proof, so the very next decision probes it once
  /// before it is fully trusted. Must not be called between begin() and
  /// finish(); the new surrogate must match the old one's dimensions.
  void rebind_surrogate(const Surrogate& surrogate);

  /// External staleness signal (learn::DriftMonitor): observed outcomes
  /// persistently diverge from the surrogate's predictions. Structural
  /// guard_ok() cannot see that kind of failure — the predictions are
  /// well-formed, just wrong — so drift trips the breaker through this
  /// entry instead. No-op when the guard layer is disabled or the breaker
  /// is already open; must not be called between begin() and finish().
  void report_staleness();

  // --- breaker observability ---
  bool breaker_open() const { return breaker_ != BreakerState::kClosed; }
  std::size_t breaker_trips() const { return breaker_trips_; }
  std::size_t breaker_resets() const { return breaker_resets_; }
  std::size_t fallback_decisions() const { return fallback_decisions_; }

  void set_gamma(double gamma);
  double gamma() const { return options_.gamma; }
  /// Swap the guard bounds at runtime: operators can tighten or loosen the
  /// sanity margins without rebuilding the engine (tests use an impossible
  /// floor to force deterministic trips). Does not touch breaker state.
  void set_guard(const SurrogateGuardOptions& guard) {
    options_.guard = guard;
  }
  const DecisionEngineOptions& options() const { return options_; }

  /// Checkpoint the engine's replay-relevant state: the encoder cache, the
  /// circuit breaker (state, cooldown, last-known-good config), and the
  /// cumulative breaker counters. The surrogate weights are NOT serialized
  /// here — the owner restores the engine against the same (or the learn/
  /// store's restored) surrogate. Must not be called between begin() and
  /// finish().
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

  std::size_t window_length() const { return parser_.window_length(); }
  std::size_t encoding_dim() const { return encoder_.encoding_dim(); }
  const std::vector<lambda::Config>& configs() const {
    return scorer_.configs();
  }
  const SequenceEncoder& encoder() const { return encoder_; }

 private:
  /// Closed = trusting the surrogate; Open = serving the fallback config
  /// for the cooldown; HalfOpen = next decision probes the surrogate once.
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  EngineDecision fallback_decision();
  void trip_breaker();
  /// Shared tail of finish()/finish_scored(): guard, cache insert, breaker
  /// reset, policy. `scored` points into the scorer's scratch buffer.
  EngineDecision complete(std::span<const float> encoding,
                          std::span<const PredictionTarget> scored,
                          double score_seconds);

  DecisionEngineOptions options_;
  WindowParser parser_;
  SequenceEncoder encoder_;
  GridScorer scorer_;
  // Stage-latency histograms (core.engine.*_seconds, DESIGN.md §9);
  // registry handles cached for the hot tick path.
  obs::Histogram* parse_hist_;
  obs::Histogram* encode_hist_;
  obs::Histogram* score_hist_;
  obs::Histogram* search_hist_;
  // Breaker counters (core.engine.fallback_*).
  obs::Counter* trip_counter_;
  obs::Counter* fallback_counter_;
  obs::Counter* reset_counter_;
  // Pending state between begin() and finish().
  std::span<const float> pending_window_;
  std::span<const float> pending_e1_;  // set on a cache hit
  bool pending_ = false;
  bool pending_hit_ = false;
  bool pending_bypass_ = false;
  std::vector<float> e1_scratch_;  // decide()'s encode output, reused
  // Breaker state.
  BreakerState breaker_ = BreakerState::kClosed;
  std::size_t cooldown_left_ = 0;
  std::optional<lambda::Config> last_good_;
  lambda::Config conservative_;  // cold fallback: most conservative grid pt
  std::size_t breaker_trips_ = 0;
  std::size_t breaker_resets_ = 0;
  std::size_t fallback_decisions_ = 0;
};

/// sim::BatchEncoder over the surrogate: encodes k tenant windows in one
/// [k, l, 1] encode_sequence call. The kernels' per-row determinism makes
/// each row bit-identical to a solo [1, l, 1] encode, which is what keeps
/// multi-tenant runs bit-identical to independent single-tenant replays.
///
/// Shard safety: encode() is safe to call concurrently from several
/// runtime shards, on distinct instances over one surrogate or on a single
/// shared instance — the forward reads a const model under thread-local
/// NoGradGuard/arena scopes, keeps its scratch tensor on the stack, and
/// the base-class call counters are relaxed atomics. (Each tenant's
/// SequenceEncoder cache, by contrast, is single-writer: a tenant belongs
/// to exactly one shard.)
class SurrogateBatchEncoder final : public sim::BatchEncoder {
 public:
  explicit SurrogateBatchEncoder(const Surrogate& surrogate)
      : surrogate_(surrogate) {}

  std::size_t window_length() const override;
  std::size_t encoding_dim() const override;
  void encode(std::span<const float> windows, std::size_t count,
              std::span<float> out) override;

 private:
  const Surrogate& surrogate_;
};

/// sim::BatchScorer over the surrogate's fused grid-scoring pass: scores k
/// tenants' E_1 rows against the whole config grid in one
/// predict_grid_from_e1_batch call (DESIGN.md §12). Row r of the output is
/// bit-identical to scoring row r alone at every precision (fp32 exactly
/// reproduces the composed head; the quantized paths quantize activations
/// row-locally), which is what keeps multi-tenant batched-scoring runs
/// replay-invariant.
///
/// Shard safety: score() reads the model and the scoring cache const (the
/// per-call scratch lives in thread-local arenas), so one instance — or
/// several over one surrogate — may serve concurrent runtime shards.
/// calibrate() mutates the cache and must happen-before any concurrent
/// score().
class SurrogateBatchScorer final : public sim::BatchScorer {
 public:
  SurrogateBatchScorer(const Surrogate& surrogate,
                       std::vector<lambda::Config> configs,
                       ScoringPrecision precision = ScoringPrecision::kFp32);

  std::size_t encoding_dim() const override;
  std::size_t grid_size() const override;
  std::size_t target_dim() const override;
  void score(std::span<const float> e1_rows, std::size_t count,
             std::span<float> out) override;

  /// Calibrate the static int8 activation scale (optional; see
  /// Surrogate::calibrate_scoring_cache).
  void calibrate(std::span<const float> windows, std::size_t count);

  ScoringPrecision precision() const { return cache_.precision(); }

 private:
  const Surrogate& surrogate_;
  std::vector<lambda::Config> configs_;
  GridScoringCache cache_;
};

}  // namespace deepbat::core
