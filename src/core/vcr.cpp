#include "core/vcr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace deepbat::core {

double vcr(const sim::SimResult& result, double t0, double t1,
           const VcrOptions& options) {
  DEEPBAT_CHECK(t1 > t0, "vcr: empty interval");
  DEEPBAT_CHECK(options.window_s > 0.0, "vcr: window must be positive");
  const auto windows = static_cast<std::size_t>(
      std::ceil((t1 - t0) / options.window_s));
  std::vector<std::vector<double>> per_window(windows);
  for (const auto& r : result.requests) {
    if (r.arrival < t0 || r.arrival >= t1) continue;
    auto w = static_cast<std::size_t>((r.arrival - t0) / options.window_s);
    if (w >= windows) w = windows - 1;
    per_window[w].push_back(r.latency());
  }
  std::size_t evaluated = 0;
  std::size_t violated = 0;
  for (auto& lats : per_window) {
    if (lats.empty()) continue;
    ++evaluated;
    std::sort(lats.begin(), lats.end());
    if (quantile_sorted(lats, options.percentile) > options.slo_s) {
      ++violated;
    }
  }
  return evaluated == 0 ? 0.0
                        : 100.0 * static_cast<double>(violated) /
                              static_cast<double>(evaluated);
}

std::vector<double> hourly_vcr(const sim::SimResult& result, double start,
                               std::size_t hours, const VcrOptions& options) {
  std::vector<double> out;
  out.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    const double t0 = start + static_cast<double>(h) * 3600.0;
    out.push_back(vcr(result, t0, t0 + 3600.0, options));
  }
  return out;
}

}  // namespace deepbat::core
