#include "core/optimizer.hpp"

#include <chrono>

#include "common/error.hpp"

namespace deepbat::core {

OptimizationOutcome optimize(Surrogate& model,
                             std::span<const float> encoded_window,
                             std::span<const lambda::Config> configs,
                             const OptimizerOptions& options) {
  DEEPBAT_CHECK(!configs.empty(), "optimize: no candidate configs");
  DEEPBAT_CHECK(options.gamma >= 0.0 && options.gamma < 1.0,
                "optimize: gamma must be in [0, 1)");
  DEEPBAT_CHECK(options.percentile_index < kPercentiles.size(),
                "optimize: percentile index out of range");

  OptimizationOutcome outcome;
  const auto t0 = std::chrono::steady_clock::now();
  outcome.predictions = model.predict_grid(encoded_window, configs);
  const auto t1 = std::chrono::steady_clock::now();

  const double effective_slo = options.slo_s * (1.0 - options.gamma);
  std::optional<std::size_t> best;
  std::size_t fastest = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const PredictionTarget& p = outcome.predictions[i];
    const double lat = p.latency_s[options.percentile_index];
    if (lat <
        outcome.predictions[fastest].latency_s[options.percentile_index]) {
      fastest = i;
    }
    if (lat > effective_slo) continue;
    if (!best.has_value() ||
        p.cost_usd_per_request <
            outcome.predictions[*best].cost_usd_per_request) {
      best = i;
    }
  }
  const std::size_t chosen = best.value_or(fastest);
  outcome.choice.config = configs[chosen];
  outcome.choice.prediction = outcome.predictions[chosen];
  outcome.choice.feasible = best.has_value();
  const auto t2 = std::chrono::steady_clock::now();
  outcome.predict_seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.search_seconds = std::chrono::duration<double>(t2 - t1).count();
  return outcome;
}

}  // namespace deepbat::core
