#include "core/optimizer.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/grid_search.hpp"

namespace deepbat::core {

OptimizedChoice select_config(std::span<const PredictionTarget> predictions,
                              std::span<const lambda::Config> configs,
                              const OptimizerOptions& options) {
  DEEPBAT_CHECK(!configs.empty(), "select_config: no candidate configs");
  DEEPBAT_CHECK(predictions.size() == configs.size(),
                "select_config: predictions/configs size mismatch");
  DEEPBAT_CHECK(options.gamma >= 0.0 && options.gamma < 1.0,
                "select_config: gamma must be in [0, 1)");
  DEEPBAT_CHECK(options.percentile_index < kPercentiles.size(),
                "select_config: percentile index out of range");

  const double effective_slo = options.slo_s * (1.0 - options.gamma);
  const auto latency = [&](std::size_t i) {
    return predictions[i].latency_s[options.percentile_index];
  };
  const GridSearchResult scan = grid_search_argmin(
      configs.size(),
      [&](std::size_t i) { return latency(i) <= effective_slo; }, latency,
      [&](std::size_t i) { return predictions[i].cost_usd_per_request; });

  OptimizedChoice choice;
  choice.config = configs[scan.best];
  choice.prediction = predictions[scan.best];
  choice.feasible = scan.any_feasible;
  return choice;
}

OptimizationOutcome optimize(const Surrogate& model,
                             std::span<const float> encoded_window,
                             std::span<const lambda::Config> configs,
                             const OptimizerOptions& options) {
  DEEPBAT_CHECK(!configs.empty(), "optimize: no candidate configs");
  DEEPBAT_CHECK(options.gamma >= 0.0 && options.gamma < 1.0,
                "optimize: gamma must be in [0, 1)");

  OptimizationOutcome outcome;
  const auto t0 = std::chrono::steady_clock::now();
  outcome.predictions = model.predict_grid(encoded_window, configs);
  const auto t1 = std::chrono::steady_clock::now();
  outcome.choice = select_config(outcome.predictions, configs, options);
  const auto t2 = std::chrono::steady_clock::now();
  outcome.predict_seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.search_seconds = std::chrono::duration<double>(t2 - t1).count();
  return outcome;
}

}  // namespace deepbat::core
