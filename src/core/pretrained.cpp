#include "core/pretrained.hpp"

#include <cstdlib>

#include "common/log.hpp"
#include "nn/serialize.hpp"

namespace deepbat::core {

PretrainedModel ensure_pretrained(const workload::Trace& trace,
                                  const lambda::ConfigGrid& grid,
                                  const lambda::LambdaModel& model,
                                  const PretrainSpec& spec) {
  PretrainedModel out;
  out.surrogate = std::make_unique<Surrogate>(spec.surrogate, grid);
  if (!spec.force_retrain && std::filesystem::exists(spec.cache_path)) {
    nn::load_module(spec.cache_path.string(), *out.surrogate);
    out.surrogate->set_training(false);
    out.loaded_from_cache = true;
    LOG_INFO("loaded pretrained surrogate from " << spec.cache_path);
    return out;
  }
  LOG_INFO("training surrogate (" << spec.train.epochs << " epochs, "
                                  << spec.dataset.samples << " samples) -> "
                                  << spec.cache_path);
  const nn::Dataset dataset =
      build_dataset(trace, grid, model, spec.dataset);
  out.train_result = train(*out.surrogate, dataset, spec.train);
  if (!spec.cache_path.empty()) {
    const auto dir = spec.cache_path.parent_path();
    if (!dir.empty()) std::filesystem::create_directories(dir);
    nn::save_module(spec.cache_path.string(), *out.surrogate);
  }
  return out;
}

PretrainSpec bench_spec(const std::filesystem::path& cache_dir) {
  PretrainSpec spec;
  spec.cache_path = cache_dir / "deepbat_surrogate.bin";
  // Budget scaled for a 2-core laptop; the paper's full recipe (100 epochs,
  // 0.05 % of the trace) is reproducible via the environment overrides.
  spec.surrogate.sequence_length = 128;  // paper's L=128 sensitivity point
  spec.dataset.sequence_length = 128;
  spec.dataset.label_arrivals = 512;  // smoother percentile labels
  spec.train.epochs = 24;
  spec.dataset.samples = 800;
  if (const char* e = std::getenv("DEEPBAT_TRAIN_EPOCHS")) {
    spec.train.epochs = std::atoi(e);
  }
  if (const char* s = std::getenv("DEEPBAT_TRAIN_SAMPLES")) {
    spec.dataset.samples = static_cast<std::size_t>(std::atoll(s));
  }
  return spec;
}

}  // namespace deepbat::core
