#pragma once
// Fleet-level multi-SLO optimizer over heterogeneous backends
// (DESIGN.md §13). DeepBAT provisions each application in isolation on
// CPU-Lambda; HarmonyBatch (arXiv:2405.05633) shows the fleet-level cost
// optimum instead PARTITIONS applications into function groups and serves
// each group on the cheapest feasible tier — CPU functions for light or
// loose-SLO traffic, fractional-GPU functions (HAS-GPU, arXiv:2505.01968)
// for aggregated tight-SLO traffic whose batches amortize the higher
// per-second price.
//
// The optimizer is deterministic and purely analytic at its core:
//
//   * Tenants are sorted by SLO ascending (strictest first) and merged
//     greedily — a merge is kept when the merged group's best provisioning
//     is predicted cheaper ($/s) than the two parts provisioned apart.
//   * A group's candidate (backend, M, B, T) is feasible when the
//     WORST-CASE latency bound T + s(cfg, B) meets the group's strictest
//     SLO tightened by a safety margin. The bound is exact for this
//     simulator: a request waits at most T, and service time is monotone
//     in the actual batch size (<= B).
//   * Cost uses the analytic expected batch fill n = min(B, 1 + lambda*T)
//     (lambda = the group's aggregate arrival rate): cost/request =
//     invocation_cost(cfg, s(cfg, round(n))) / n.
//
// When a trained surrogate is attached, CPU-tier candidates are ALSO
// scored through the existing fused GridScoringCache path (one
// predict_grid_from_e1_batch pass, rows = groups) and the group's CPU
// choice must additionally be surrogate-predicted feasible — the fleet
// optimizer then provisions against the same model the per-tenant DeepBAT
// controller trusts online. GPU-tier candidates stay analytic: the
// surrogate is trained on CPU observations and its feature standardizer is
// fit to the CPU grid, so scoring SM% configs through it would be garbage.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/decision_engine.hpp"
#include "lambda/backend.hpp"
#include "workload/trace.hpp"

namespace deepbat::core {

/// One application in the fleet: its trace and its own SLO contract.
struct FleetTenant {
  std::string name;
  const workload::Trace* trace = nullptr;
  double slo_s = 0.1;
  /// Latency percentile the SLO is judged at (attainment reporting).
  double slo_percentile = 0.95;
};

/// One function group of the fleet plan: the members, the serving backend,
/// the chosen configuration, and the predictions it was chosen on.
struct GroupPlan {
  std::vector<std::size_t> tenants;  // indices into the planned fleet
  lambda::BackendKind backend = lambda::BackendKind::kCpuLambda;
  lambda::Config config;
  double slo_s = 0.0;          // strictest member SLO (the group contract)
  double rate = 0.0;           // aggregate arrival rate (req/s)
  double expected_fill = 1.0;  // analytic n = min(B, 1 + rate * T)
  double predicted_cost_per_request = 0.0;
  /// Worst-case request latency T + s(cfg, B) the feasibility test bounded.
  double predicted_latency_bound_s = 0.0;
  bool feasible = false;  // false only when a forced merge had no headroom
  /// Superposed arrival stream of the members (deterministic k-way merge).
  workload::Trace merged_trace;
};

struct FleetPlan {
  std::vector<GroupPlan> groups;
  /// Tenant index -> group id (position in `groups`).
  std::vector<std::int64_t> group_of;
  /// Rate-weighted aggregate predicted cost per request across groups.
  double predicted_cost_per_request = 0.0;
};

struct FleetOptimizerOptions {
  /// Hard cap on the number of function groups (0 = unlimited). When the
  /// cap binds, trailing tenants are force-merged into the last group.
  std::size_t max_groups = 0;
  /// Feasibility tightening: latency bound <= slo * (1 - safety_margin).
  double safety_margin = 0.1;
  /// Permit the GPU tier (requires a gpu backend at construction).
  bool allow_gpu = true;
  /// Permit the CPU tier. Disabling both is an error; disabling CPU
  /// requires a gpu backend (`--backend gpu` benches).
  bool allow_cpu = true;
  /// Precision of the fused surrogate scoring pass (attach_surrogate).
  ScoringPrecision scoring_precision = ScoringPrecision::kFp32;
  /// Pad gap for surrogate window parsing (DecisionEngineOptions::pad_gap_s).
  double pad_gap_s = 10.0;
};

class FleetOptimizer {
 public:
  /// Borrows both backends; `gpu` may be null (CPU-only fleet). The caller
  /// keeps them alive for the optimizer's lifetime.
  FleetOptimizer(const lambda::CpuLambdaBackend& cpu,
                 const lambda::GpuServerlessBackend* gpu,
                 FleetOptimizerOptions options = {});

  /// Attach a trained surrogate: plan() then refines every CPU group's
  /// configuration through one fused GridScoringCache scoring pass (rows =
  /// groups) and requires surrogate-predicted feasibility on top of the
  /// analytic bound. Borrowed; null detaches.
  void attach_surrogate(const Surrogate* surrogate) { surrogate_ = surrogate; }

  /// Best (backend, config) for an aggregate rate under an SLO — the
  /// analytic inner evaluation, exposed for tests and benches.
  struct Evaluation {
    lambda::BackendKind backend = lambda::BackendKind::kCpuLambda;
    lambda::Config config;
    double cost_per_request = 0.0;
    double latency_bound_s = 0.0;
    double expected_fill = 1.0;
    bool feasible = false;
  };
  Evaluation evaluate(double rate, double slo_s) const;

  /// Analytic expected batch fill at `rate`: min(B, 1 + rate * T),
  /// clamped to [1, B].
  static double expected_fill(double rate, const lambda::Config& config);

  /// Partition `fleet` into function groups and provision each.
  FleetPlan plan(std::span<const FleetTenant> fleet) const;

  const FleetOptimizerOptions& options() const { return options_; }

 private:
  Evaluation evaluate_backend(const lambda::Backend& backend, double rate,
                              double slo_s) const;
  void refine_with_surrogate(FleetPlan& plan) const;

  const lambda::CpuLambdaBackend* cpu_;
  const lambda::GpuServerlessBackend* gpu_;
  FleetOptimizerOptions options_;
  const Surrogate* surrogate_ = nullptr;
};

/// Attribute a merged group replay's per-request latencies back to the
/// member tenants, by arrival timestamp: requests sharing an arrival time
/// necessarily shared a batch (hence a latency), so multiset matching over
/// timestamps is exact. Dropped arrivals yield +inf latencies. Returns one
/// latency vector per group member, in GroupPlan::tenants order.
std::vector<std::vector<double>> split_group_latencies(
    const GroupPlan& group, std::span<const FleetTenant> fleet,
    const sim::SimResult& result);

}  // namespace deepbat::core
