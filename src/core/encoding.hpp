#pragma once
// Input/target encodings shared by the surrogate model, the dataset
// builder, and the online controller. Keeping them in one place guarantees
// training and inference agree bit-for-bit.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "lambda/model.hpp"

namespace deepbat::core {

/// Latency percentiles the surrogate predicts (paper Fig. 3: "cost and
/// latency percentiles"). Index of the SLO percentile (0.95) is
/// kSloPercentileIndex.
inline constexpr std::array<double, 7> kPercentiles = {
    0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99};
inline constexpr std::size_t kSloPercentileIndex = 5;

/// Output vector layout: [cost (micro-USD), P5, P25, P50, P75, P90, P95,
/// P99 (seconds)].
inline constexpr std::size_t kTargetDim = 1 + kPercentiles.size();

/// Cost is predicted in micro-USD per request so its magnitude matches the
/// latency entries (the paper sets the Huber delta "based on the small
/// magnitude of target inputs").
inline constexpr double kCostScale = 1e6;

/// Inter-arrival gaps are fed as log1p(milliseconds): compresses the heavy
/// tail of bursty traces while keeping sub-millisecond resolution.
float encode_gap(double gap_seconds);

/// Encode a window of inter-arrival gaps (seconds) into model inputs.
std::vector<float> encode_window(std::span<const double> gaps);

/// Raw feature vector {M, B, T}; standardization happens inside the model
/// (paper Eq. 5).
std::vector<float> encode_features(const lambda::Config& config);

struct PredictionTarget {
  double cost_usd_per_request = 0.0;
  std::array<double, kPercentiles.size()> latency_s{};

  /// Latency at the paper's SLO percentile (95th).
  double p95() const { return latency_s[kSloPercentileIndex]; }
};

/// Pack into the model's output layout.
std::vector<float> pack_target(const PredictionTarget& target);

/// Unpack a model output row.
PredictionTarget unpack_target(std::span<const float> row);

}  // namespace deepbat::core
