#pragma once
// DeepBAT's Optimizer component (paper §III-E): exhaustive search over the
// configuration grid on the *surrogate's* predictions — minimize predicted
// cost subject to the predicted SLO-percentile latency staying under the
// SLO, optionally tightened by the penalty factor gamma (§III-D).

#include <optional>
#include <span>

#include "core/encoding.hpp"
#include "core/surrogate.hpp"

namespace deepbat::core {

struct OptimizerOptions {
  double slo_s = 0.1;
  /// Penalty factor gamma: the SLO is tightened to slo * (1 - gamma) so
  /// that prediction error of the surrogate does not translate into real
  /// violations. 0 disables.
  double gamma = 0.0;
  /// Percentile index into PredictionTarget::latency_s used as the SLO
  /// metric (default: 95th).
  std::size_t percentile_index = kSloPercentileIndex;
};

struct OptimizedChoice {
  lambda::Config config;
  PredictionTarget prediction;
  bool feasible = false;  // predicted-feasible under the (tightened) SLO
};

struct OptimizationOutcome {
  OptimizedChoice choice;
  /// Surrogate predictions for the full grid (same order as `configs`).
  std::vector<PredictionTarget> predictions;
  double predict_seconds = 0.0;  // surrogate forward time
  double search_seconds = 0.0;   // feasibility scan + argmin time
};

/// The Policy stage on its own: (1) keep configs whose predicted latency
/// percentile meets the gamma-tightened SLO, (2) among them pick the
/// predicted cheapest. If none is feasible, fall back to the config with
/// the lowest predicted latency percentile (serve as fast as possible).
/// Used by optimize() below and by the DecisionEngine's Policy stage.
OptimizedChoice select_config(std::span<const PredictionTarget> predictions,
                              std::span<const lambda::Config> configs,
                              const OptimizerOptions& options);

/// Two-step optimization: surrogate grid prediction + select_config().
OptimizationOutcome optimize(const Surrogate& model,
                             std::span<const float> encoded_window,
                             std::span<const lambda::Config> configs,
                             const OptimizerOptions& options);

}  // namespace deepbat::core
