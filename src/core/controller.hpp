#pragma once
// The full DeepBAT controller (paper Fig. 2): Workload Parser (sliding
// window over the arrival history) -> Deep Surrogate Model -> SLO-aware
// Optimizer. Plugs into sim::run_platform next to the BATCH baseline.

#include <memory>

#include "core/optimizer.hpp"
#include "sim/platform.hpp"

namespace deepbat::core {

struct DeepBatControllerOptions {
  double slo_s = 0.1;
  double gamma = 0.0;  // penalty factor (see §III-D); set after fine-tuning
  lambda::ConfigGrid grid = lambda::ConfigGrid::standard();
  /// Gap value used to left-pad windows with fewer arrivals than l
  /// (paper §III-A: "techniques for padding ... can be used"). A large gap
  /// reads as "no traffic".
  double pad_gap_s = 10.0;
};

class DeepBatController : public sim::Controller {
 public:
  /// The controller borrows the surrogate (trained/fine-tuned elsewhere).
  DeepBatController(Surrogate& surrogate, DeepBatControllerOptions options);

  lambda::Config decide(const workload::Trace& history, double now) override;
  std::string name() const override { return "DeepBAT"; }

  void set_gamma(double gamma);
  double gamma() const { return options_.gamma; }

  // --- instrumentation (speedup experiment, §IV-F) ---
  std::size_t decision_count() const { return decisions_; }
  double total_predict_seconds() const { return predict_seconds_; }
  double total_search_seconds() const { return search_seconds_; }
  const std::optional<OptimizationOutcome>& last_outcome() const {
    return last_outcome_;
  }

 private:
  Surrogate& surrogate_;
  DeepBatControllerOptions options_;
  std::vector<lambda::Config> configs_;
  std::size_t decisions_ = 0;
  double predict_seconds_ = 0.0;
  double search_seconds_ = 0.0;
  std::optional<OptimizationOutcome> last_outcome_;
};

}  // namespace deepbat::core
