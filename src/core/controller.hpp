#pragma once
// The full DeepBAT controller (paper Fig. 2): Workload Parser (sliding
// window over the arrival history) -> Deep Surrogate Model -> SLO-aware
// Optimizer. Since the control-plane refactor this is a thin adapter over
// core::DecisionEngine; it also implements sim::SplitController so the
// multi-tenant runtime can batch the encoder stage across tenants.

#include <optional>

#include "core/decision_engine.hpp"

namespace deepbat::core {

struct DeepBatControllerOptions {
  double slo_s = 0.1;
  double gamma = 0.0;  // penalty factor (see §III-D); set after fine-tuning
  lambda::ConfigGrid grid = lambda::ConfigGrid::standard();
  /// Heterogeneous serving backend: when set its config_grid() overrides
  /// `grid` (DecisionEngineOptions::backend). Borrowed.
  const lambda::Backend* backend = nullptr;
  /// Gap value used to left-pad windows with fewer arrivals than l
  /// (paper §III-A: "techniques for padding ... can be used"). A large gap
  /// reads as "no traffic".
  double pad_gap_s = 10.0;
  /// Entries held by the engine's window-encoding cache.
  std::size_t encoder_cache_capacity = 512;
  /// Surrogate guardrails + circuit breaker (DecisionEngine, DESIGN.md §11).
  SurrogateGuardOptions guard;
  /// Grid-scoring arithmetic (DESIGN.md §12): fp32 (exact, default), or
  /// fp16/int8 for the faster quantized per-config GEMM.
  ScoringPrecision scoring_precision = ScoringPrecision::kFp32;
};

class DeepBatController : public sim::SplitController,
                          public sim::Checkpointable {
 public:
  /// The controller borrows the surrogate (trained/fine-tuned elsewhere);
  /// inference runs under NoGradGuard, so a const reference suffices.
  DeepBatController(const Surrogate& surrogate,
                    DeepBatControllerOptions options);

  lambda::Config decide(const workload::Trace& history, double now) override;
  std::string name() const override { return "DeepBAT"; }

  // Split-phase path (multi-tenant runtime); produces decisions identical
  // to decide() — the shared batched encode is bit-equal per row to the
  // solo forward.
  TickRequest begin_tick(const workload::Trace& history, double now) override;
  lambda::Config finish_tick(std::span<const float> encoding) override;

  /// The engine accepts externally fused grid scores (SurrogateBatchScorer)
  /// at every precision; decisions are identical to the per-tenant path.
  bool supports_batched_scoring() const override { return true; }
  lambda::Config finish_tick_scored(
      std::span<const float> encoding,
      std::span<const float> raw_predictions) override;

  /// Calibrate the int8 scoring path's static activation scale from sample
  /// windows (see DecisionEngine::calibrate_scoring).
  void calibrate_scoring(std::span<const float> windows, std::size_t count) {
    engine_.calibrate_scoring(windows, count);
  }
  ScoringPrecision scoring_precision() const {
    return engine_.scoring_precision();
  }

  void set_gamma(double gamma) { engine_.set_gamma(gamma); }
  double gamma() const { return engine_.gamma(); }

  /// Hot-swap the engine's surrogate (learn/ online retraining loop,
  /// DESIGN.md §14); see DecisionEngine::rebind_surrogate. Only between
  /// decisions.
  void swap_surrogate(const Surrogate& surrogate) {
    engine_.rebind_surrogate(surrogate);
  }
  /// External staleness trip from an observed-drift monitor
  /// (learn::DriftMonitor); see DecisionEngine::report_staleness.
  void report_staleness() { engine_.report_staleness(); }

  // --- instrumentation (speedup experiment, §IV-F) ---
  std::size_t decision_count() const { return decisions_; }
  double total_predict_seconds() const { return predict_seconds_; }
  double total_search_seconds() const { return search_seconds_; }
  const std::optional<OptimizationOutcome>& last_outcome() const {
    return last_outcome_;
  }
  std::size_t cache_hits() const { return engine_.encoder().cache_hits(); }
  std::size_t cache_misses() const { return engine_.encoder().cache_misses(); }
  std::size_t fallback_decisions() const {
    return engine_.fallback_decisions();
  }
  std::size_t breaker_trips() const { return engine_.breaker_trips(); }

  const DecisionEngine& engine() const { return engine_; }

  /// sim::Checkpointable (DESIGN.md §16): the engine's cache + breaker
  /// state plus the controller's cumulative instrumentation. last_outcome_
  /// is intra-tick diagnostics and is not serialized (it resets on the next
  /// decision either way).
  void save_state(sim::CheckpointWriter& w) const override;
  void restore_state(sim::CheckpointReader& r) override;

 private:
  lambda::Config record(EngineDecision decision);

  DecisionEngine engine_;
  std::size_t decisions_ = 0;
  double predict_seconds_ = 0.0;
  double search_seconds_ = 0.0;
  std::optional<OptimizationOutcome> last_outcome_;
};

}  // namespace deepbat::core
