#include "core/trainer.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "nn/arena.hpp"
#include "nn/ops.hpp"

namespace deepbat::core {

namespace {

/// Per-element loss weights: rows whose true P95 exceeds the SLO get
/// up-weighted (the paper's SLO-violation penalty).
nn::Tensor make_weights(const nn::Tensor& targets, double slo_s,
                        float violation_weight) {
  nn::Tensor w(targets.shape());
  w.fill(1.0F);
  const std::int64_t rows = targets.dim(0);
  const std::int64_t cols = targets.dim(1);
  const auto p95_col = static_cast<std::int64_t>(1 + kSloPercentileIndex);
  for (std::int64_t r = 0; r < rows; ++r) {
    if (targets.at(r, p95_col) > static_cast<float>(slo_s)) {
      for (std::int64_t c = 0; c < cols; ++c) {
        w.at(r, c) = violation_weight;
      }
    }
  }
  return w;
}

double run_validation(Surrogate& model, const nn::Dataset& val) {
  if (val.empty()) return 0.0;
  model.set_training(false);
  nn::DataLoader loader(val, 32, /*shuffle=*/false, 0);
  nn::NoGradGuard no_grad;
  double mape_sum = 0.0;
  std::size_t count = 0;
  for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b) {
    nn::arena::Scope arena_scope;
    const nn::Batch batch = loader.batch(b);
    nn::Var pred = model.forward(nn::make_leaf(batch.sequences, false),
                                 nn::make_leaf(batch.features, false));
    const nn::Var m = nn::mape_loss(pred, nn::make_leaf(batch.targets, false));
    mape_sum += m->value.at(0) * static_cast<double>(batch.size);
    count += static_cast<std::size_t>(batch.size);
  }
  model.set_training(true);
  return count ? mape_sum / static_cast<double>(count) : 0.0;
}

TrainResult train_impl(Surrogate& model, const nn::Dataset& dataset,
                       const TrainOptions& options) {
  DEEPBAT_CHECK(!dataset.empty(), "train: empty dataset");
  const auto t0 = std::chrono::steady_clock::now();
  const auto [train_set, val_set] = dataset.split(options.validation_fraction);

  nn::Adam adam(model.parameters(), options.learning_rate);
  nn::DataLoader loader(train_set, options.batch_size, /*shuffle=*/true,
                        options.shuffle_seed);
  model.set_training(true);

  TrainResult result;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.lr_decay_every > 0 && epoch > 0 &&
        epoch % options.lr_decay_every == 0) {
      adam.set_lr(adam.lr() * options.lr_decay_factor);
    }
    double loss_sum = 0.0;
    std::size_t seen = 0;
    for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b) {
      const nn::Batch batch = loader.batch(b);
      adam.zero_grad();
      nn::Var pred = model.forward(nn::make_leaf(batch.sequences, false),
                                   nn::make_leaf(batch.features, false));
      nn::Var targets = nn::make_leaf(batch.targets, false);
      nn::Var weights = nn::make_leaf(
          make_weights(batch.targets, options.slo_s,
                       options.slo_violation_weight),
          false);
      nn::Var loss = nn::combined_loss(pred, targets, options.alpha,
                                       options.huber_delta, weights);
      nn::backward(loss);
      adam.clip_grad_norm(options.grad_clip);
      adam.step();
      loss_sum += loss->value.at(0) * static_cast<double>(batch.size);
      seen += static_cast<std::size_t>(batch.size);
    }
    loader.next_epoch();

    EpochStats stats;
    stats.train_loss = seen ? loss_sum / static_cast<double>(seen) : 0.0;
    stats.validation_mape = run_validation(model, val_set);
    result.history.push_back(stats);
    if (options.on_epoch) {
      options.on_epoch(epoch, stats.train_loss, stats.validation_mape);
    }
    LOG_DEBUG("epoch " << epoch << " loss " << stats.train_loss << " val-MAPE "
                       << stats.validation_mape << "%");
  }
  result.final_validation_mape =
      result.history.empty() ? 0.0 : result.history.back().validation_mape;
  const auto t1 = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  model.set_training(false);
  return result;
}

}  // namespace

TrainResult train(Surrogate& model, const nn::Dataset& dataset,
                  const TrainOptions& options) {
  return train_impl(model, dataset, options);
}

TrainResult fine_tune(Surrogate& model, const nn::Dataset& dataset,
                      int epochs, float learning_rate, double slo_s) {
  TrainOptions options;
  options.epochs = epochs;
  options.learning_rate = learning_rate;
  options.slo_s = slo_s;
  options.validation_fraction = 0.1;
  options.shuffle_seed = 13;
  return train_impl(model, dataset, options);
}

TrainResult fine_tune(Surrogate& model, const nn::Dataset& dataset,
                      const TrainOptions& options) {
  return train_impl(model, dataset, options);
}

double evaluate_mape(Surrogate& model, const nn::Dataset& dataset) {
  DEEPBAT_CHECK(!dataset.empty(), "evaluate_mape: empty dataset");
  model.set_training(false);
  nn::DataLoader loader(dataset, 32, /*shuffle=*/false, 0);
  nn::NoGradGuard no_grad;
  double mape_sum = 0.0;
  std::size_t count = 0;
  for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b) {
    // One arena scope per batch: the forward graph's tensors are bump-
    // allocated and rewound before the next batch.
    nn::arena::Scope arena_scope;
    const nn::Batch batch = loader.batch(b);
    nn::Var pred = model.forward(nn::make_leaf(batch.sequences, false),
                                 nn::make_leaf(batch.features, false));
    const nn::Var m = nn::mape_loss(pred, nn::make_leaf(batch.targets, false));
    mape_sum += m->value.at(0) * static_cast<double>(batch.size);
    count += static_cast<std::size_t>(batch.size);
  }
  return count ? mape_sum / static_cast<double>(count) : 0.0;
}

double estimate_gamma(Surrogate& model, const nn::Dataset& dataset) {
  DEEPBAT_CHECK(!dataset.empty(), "estimate_gamma: empty dataset");
  model.set_training(false);
  nn::DataLoader loader(dataset, 32, /*shuffle=*/false, 0);
  nn::NoGradGuard no_grad;
  double err_sum = 0.0;
  std::size_t count = 0;
  const auto p95_col = static_cast<std::int64_t>(1 + kSloPercentileIndex);
  for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b) {
    nn::arena::Scope arena_scope;
    const nn::Batch batch = loader.batch(b);
    nn::Var pred = model.forward(nn::make_leaf(batch.sequences, false),
                                 nn::make_leaf(batch.features, false));
    for (std::int64_t r = 0; r < batch.size; ++r) {
      const double truth = batch.targets.at(r, p95_col);
      if (std::abs(truth) < 1e-9) continue;
      const double guess = pred->value.at(r, p95_col);
      err_sum += std::abs(guess - truth) / std::abs(truth);
      ++count;
    }
  }
  return count ? err_sum / static_cast<double>(count) : 0.0;
}

}  // namespace deepbat::core
