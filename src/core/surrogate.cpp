#include "core/surrogate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/arena.hpp"

namespace deepbat::core {

namespace {

nn::TransformerConfig encoder_config(const SurrogateConfig& cfg) {
  nn::TransformerConfig tc;
  tc.model_dim = cfg.model_dim;
  tc.num_heads = cfg.num_heads;
  tc.ffn_hidden = cfg.ffn_hidden;
  tc.num_layers = cfg.encoder_layers;
  tc.dropout = cfg.dropout;
  tc.max_len = std::max<std::int64_t>(cfg.sequence_length, 16);
  return tc;
}

}  // namespace

FeatureStandardizer FeatureStandardizer::from_grid(
    const lambda::ConfigGrid& grid) {
  const auto configs = grid.enumerate();
  DEEPBAT_CHECK(!configs.empty(), "FeatureStandardizer: empty grid");
  FeatureStandardizer st;
  const std::size_t f = 3;
  st.mean.assign(f, 0.0F);
  st.inv_std.assign(f, 1.0F);
  std::vector<double> sum(f, 0.0);
  std::vector<double> sq(f, 0.0);
  for (const auto& c : configs) {
    const auto feats = encode_features(c);
    for (std::size_t i = 0; i < f; ++i) {
      sum[i] += feats[i];
      sq[i] += static_cast<double>(feats[i]) * feats[i];
    }
  }
  const auto n = static_cast<double>(configs.size());
  for (std::size_t i = 0; i < f; ++i) {
    const double mu = sum[i] / n;
    const double var = std::max(sq[i] / n - mu * mu, 1e-12);
    st.mean[i] = static_cast<float>(mu);
    st.inv_std[i] = static_cast<float>(1.0 / std::sqrt(var));
  }
  return st;
}

nn::Tensor FeatureStandardizer::apply(const nn::Tensor& raw) const {
  DEEPBAT_CHECK(raw.ndim() == 2 &&
                    raw.dim(1) == static_cast<std::int64_t>(mean.size()),
                "FeatureStandardizer: shape mismatch");
  nn::Tensor out(raw.shape());
  const std::int64_t rows = raw.dim(0);
  const std::int64_t cols = raw.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      out.at(r, c) = (raw.at(r, c) - mean[ci]) * inv_std[ci];
    }
  }
  return out;
}

Surrogate::Surrogate(const SurrogateConfig& config,
                     const lambda::ConfigGrid& grid)
    : config_(config),
      standardizer_(FeatureStandardizer::from_grid(grid)),
      init_rng_(config.init_seed),
      seq_embed_(1, config.model_dim, init_rng_),
      pos_enc_(config.model_dim, std::max<std::int64_t>(config.sequence_length,
                                                        16)),
      encoder_(encoder_config(config), init_rng_, config.init_seed + 17),
      pooled_attention_(config.model_dim, config.num_heads, init_rng_,
                        config.dropout, config.init_seed + 29),
      feature_ff_(config.feature_dim, config.ffn_hidden,
                  config.feature_embed_dim, init_rng_),
      output_ff_(config.model_dim + config.feature_embed_dim,
                 config.ffn_hidden, config.output_dim, init_rng_) {
  DEEPBAT_CHECK(config.sequence_length > 0,
                "Surrogate: sequence length must be positive");
  register_module("seq_embed", &seq_embed_);
  if (config_.encoder == EncoderType::kLstm) {
    Rng lstm_rng(config.init_seed + 41);
    lstm_ = std::make_unique<nn::Lstm>(config.model_dim, config.model_dim,
                                       lstm_rng);
    register_module("lstm", lstm_.get());
  } else {
    register_module("pos_enc", &pos_enc_);
    register_module("encoder", &encoder_);
  }
  register_module("pooled_attention", &pooled_attention_);
  register_module("feature_ff", &feature_ff_);
  register_module("output_ff", &output_ff_);
}

nn::Var Surrogate::sequence_branch(const nn::Var& sequences) const {
  DEEPBAT_CHECK(sequences && sequences->value.ndim() == 3 &&
                    sequences->value.dim(2) == 1,
                "Surrogate: sequences must be [batch, l, 1]");
  const std::int64_t batch = sequences->value.dim(0);
  nn::Var embedded = seq_embed_.forward(sequences);  // Eq. 1
  nn::Var summary;  // E_p: [batch, model_dim]
  if (config_.encoder == EncoderType::kLstm) {
    // Recurrent baseline: the final hidden state summarizes the sequence.
    summary = lstm_->encode(embedded);
  } else {
    // Eq. 2 + mean pooling to E_p.
    summary =
        nn::mean_axis1(encoder_.forward(pos_enc_.forward(embedded)));
  }
  // Eq. 4: self-attention over the pooled vector (length-1 sequence; the
  // Mask is the identity at this length).
  if (!config_.use_pooled_attention) {
    return summary;
  }
  nn::Var pooled = nn::reshape(summary, {batch, 1, config_.model_dim});
  nn::Var e1 = pooled_attention_.forward(pooled, pooled, pooled);
  return nn::reshape(e1, {batch, config_.model_dim});
}

nn::Var Surrogate::head(const nn::Var& e1, const nn::Var& raw_features) const {
  // Eq. 5: standardize + feed-forward the features.
  nn::Var std_feats =
      nn::make_leaf(standardizer_.apply(raw_features->value), false,
                    "std_features");
  nn::Var e2 = feature_ff_.forward(std_feats);
  // Eq. 6: concat and project to the output vector.
  return output_ff_.forward(nn::concat_last(e1, e2));
}

nn::Var Surrogate::forward(const nn::Var& sequences, const nn::Var& features) {
  return head(sequence_branch(sequences), features);
}

nn::Tensor Surrogate::encode_sequence(const nn::Tensor& sequences) const {
  nn::NoGradGuard no_grad;  // also forces dropout off (Dropout::is_active)
  nn::Var x = nn::make_leaf(sequences, false, "sequences");
  return sequence_branch(x)->value;
}

nn::Tensor Surrogate::predict_with_features(
    const nn::Tensor& e1, const nn::Tensor& raw_features) const {
  nn::NoGradGuard no_grad;
  nn::Var e1v = nn::make_leaf(e1, false, "e1");
  nn::Var fv = nn::make_leaf(raw_features, false, "features");
  return head(e1v, fv)->value;
}

std::vector<PredictionTarget> Surrogate::predict_grid_from_e1(
    std::span<const float> e1_row,
    std::span<const lambda::Config> configs) const {
  DEEPBAT_CHECK(!configs.empty(), "predict_grid_from_e1: no configs");
  DEEPBAT_CHECK(static_cast<std::int64_t>(e1_row.size()) == config_.model_dim,
                "predict_grid_from_e1: E_1 dimension mismatch");
  // One arena scope per scoring pass: the broadcast E_1, the feature
  // tensor, and the head activations are bump-allocated and released in
  // O(1) on return; the extracted PredictionTargets are plain structs.
  nn::NoGradGuard no_grad;
  nn::arena::Scope arena_scope;

  // Broadcast E_1 across the candidate configurations.
  const auto n = static_cast<std::int64_t>(configs.size());
  nn::Tensor e1({n, config_.model_dim});
  for (std::int64_t r = 0; r < n; ++r) {
    std::copy(e1_row.begin(), e1_row.end(), e1.data() + r * config_.model_dim);
  }
  nn::Tensor feats({n, config_.feature_dim});
  for (std::int64_t r = 0; r < n; ++r) {
    const auto f = encode_features(configs[static_cast<std::size_t>(r)]);
    std::copy(f.begin(), f.end(), feats.data() + r * config_.feature_dim);
  }
  const nn::Tensor out = predict_with_features(e1, feats);

  std::vector<PredictionTarget> targets;
  targets.reserve(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    targets.push_back(unpack_target(
        {out.data() + r * config_.output_dim,
         static_cast<std::size_t>(config_.output_dim)}));
  }
  return targets;
}

std::vector<PredictionTarget> Surrogate::predict_grid(
    std::span<const float> encoded_window,
    std::span<const lambda::Config> configs) const {
  DEEPBAT_CHECK(!configs.empty(), "predict_grid: no configs");
  DEEPBAT_CHECK(static_cast<std::int64_t>(encoded_window.size()) ==
                    config_.sequence_length,
                "predict_grid: window length mismatch");
  nn::NoGradGuard no_grad;
  nn::arena::Scope arena_scope;

  // Encode the sequence once, then score the whole grid off that row.
  nn::Tensor seq({1, config_.sequence_length, 1});
  std::copy(encoded_window.begin(), encoded_window.end(), seq.data());
  const nn::Tensor e1_single = encode_sequence(seq);
  return predict_grid_from_e1(
      {e1_single.data(), static_cast<std::size_t>(config_.model_dim)},
      configs);
}

void Surrogate::set_record_attention(bool record) {
  if (config_.encoder == EncoderType::kLstm) return;  // no attention maps
  for (std::int64_t i = 0; i < encoder_.num_layers(); ++i) {
    encoder_.layer(i).self_attention().set_record_attention(record);
  }
}

std::vector<float> Surrogate::last_attention_profile() const {
  if (config_.encoder == EncoderType::kLstm) return {};
  const auto& layer0 = encoder_.layer(0).self_attention();
  const auto& attn = layer0.last_attention();
  if (!attn.has_value()) return {};
  // attn: [batch, heads, L, L]; average received attention per key position
  // over batch, heads, and query positions. The reduction runs over flat
  // contiguous rows (one pass, unit stride) instead of bounds-checked
  // element accesses.
  const nn::Tensor& a = *attn;
  const std::int64_t L = a.dim(2);
  const std::int64_t rows = a.numel() / L;  // batch * heads * L query rows
  std::vector<float> profile(static_cast<std::size_t>(L), 0.0F);
  const float* src = a.data();
  float* prof = profile.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = src + r * L;
    for (std::int64_t k = 0; k < L; ++k) prof[k] += row[k];
  }
  const float norm = static_cast<float>(rows);  // batch * heads * L
  for (float& p : profile) p /= norm;
  return profile;
}

}  // namespace deepbat::core
