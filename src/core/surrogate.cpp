#include "core/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "nn/arena.hpp"
#include "nn/kernels.hpp"

namespace deepbat::core {

namespace {

nn::TransformerConfig encoder_config(const SurrogateConfig& cfg) {
  nn::TransformerConfig tc;
  tc.model_dim = cfg.model_dim;
  tc.num_heads = cfg.num_heads;
  tc.ffn_hidden = cfg.ffn_hidden;
  tc.num_layers = cfg.encoder_layers;
  tc.dropout = cfg.dropout;
  tc.max_len = std::max<std::int64_t>(cfg.sequence_length, 16);
  return tc;
}

}  // namespace

FeatureStandardizer FeatureStandardizer::from_grid(
    const lambda::ConfigGrid& grid) {
  const auto configs = grid.enumerate();
  DEEPBAT_CHECK(!configs.empty(), "FeatureStandardizer: empty grid");
  FeatureStandardizer st;
  const std::size_t f = 3;
  st.mean.assign(f, 0.0F);
  st.inv_std.assign(f, 1.0F);
  std::vector<double> sum(f, 0.0);
  std::vector<double> sq(f, 0.0);
  for (const auto& c : configs) {
    const auto feats = encode_features(c);
    for (std::size_t i = 0; i < f; ++i) {
      sum[i] += feats[i];
      sq[i] += static_cast<double>(feats[i]) * feats[i];
    }
  }
  const auto n = static_cast<double>(configs.size());
  for (std::size_t i = 0; i < f; ++i) {
    const double mu = sum[i] / n;
    const double var = std::max(sq[i] / n - mu * mu, 1e-12);
    st.mean[i] = static_cast<float>(mu);
    st.inv_std[i] = static_cast<float>(1.0 / std::sqrt(var));
  }
  return st;
}

nn::Tensor FeatureStandardizer::apply(const nn::Tensor& raw) const {
  DEEPBAT_CHECK(raw.ndim() == 2 &&
                    raw.dim(1) == static_cast<std::int64_t>(mean.size()),
                "FeatureStandardizer: shape mismatch");
  nn::Tensor out(raw.shape());
  const std::int64_t rows = raw.dim(0);
  const std::int64_t cols = raw.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      out.at(r, c) = (raw.at(r, c) - mean[ci]) * inv_std[ci];
    }
  }
  return out;
}

Surrogate::Surrogate(const SurrogateConfig& config,
                     const lambda::ConfigGrid& grid)
    : config_(config),
      standardizer_(FeatureStandardizer::from_grid(grid)),
      init_rng_(config.init_seed),
      seq_embed_(1, config.model_dim, init_rng_),
      pos_enc_(config.model_dim, std::max<std::int64_t>(config.sequence_length,
                                                        16)),
      encoder_(encoder_config(config), init_rng_, config.init_seed + 17),
      pooled_attention_(config.model_dim, config.num_heads, init_rng_,
                        config.dropout, config.init_seed + 29),
      feature_ff_(config.feature_dim, config.ffn_hidden,
                  config.feature_embed_dim, init_rng_),
      output_ff_(config.model_dim + config.feature_embed_dim,
                 config.ffn_hidden, config.output_dim, init_rng_) {
  DEEPBAT_CHECK(config.sequence_length > 0,
                "Surrogate: sequence length must be positive");
  register_module("seq_embed", &seq_embed_);
  if (config_.encoder == EncoderType::kLstm) {
    Rng lstm_rng(config.init_seed + 41);
    lstm_ = std::make_unique<nn::Lstm>(config.model_dim, config.model_dim,
                                       lstm_rng);
    register_module("lstm", lstm_.get());
  } else {
    register_module("pos_enc", &pos_enc_);
    register_module("encoder", &encoder_);
  }
  register_module("pooled_attention", &pooled_attention_);
  register_module("feature_ff", &feature_ff_);
  register_module("output_ff", &output_ff_);
}

nn::Var Surrogate::sequence_branch(const nn::Var& sequences) const {
  DEEPBAT_CHECK(sequences && sequences->value.ndim() == 3 &&
                    sequences->value.dim(2) == 1,
                "Surrogate: sequences must be [batch, l, 1]");
  const std::int64_t batch = sequences->value.dim(0);
  nn::Var embedded = seq_embed_.forward(sequences);  // Eq. 1
  nn::Var summary;  // E_p: [batch, model_dim]
  if (config_.encoder == EncoderType::kLstm) {
    // Recurrent baseline: the final hidden state summarizes the sequence.
    summary = lstm_->encode(embedded);
  } else {
    // Eq. 2 + mean pooling to E_p.
    summary =
        nn::mean_axis1(encoder_.forward(pos_enc_.forward(embedded)));
  }
  // Eq. 4: self-attention over the pooled vector (length-1 sequence; the
  // Mask is the identity at this length).
  if (!config_.use_pooled_attention) {
    return summary;
  }
  nn::Var pooled = nn::reshape(summary, {batch, 1, config_.model_dim});
  nn::Var e1 = pooled_attention_.forward(pooled, pooled, pooled);
  return nn::reshape(e1, {batch, config_.model_dim});
}

nn::Var Surrogate::head(const nn::Var& e1, const nn::Var& raw_features) const {
  // Eq. 5: standardize + feed-forward the features.
  nn::Var std_feats =
      nn::make_leaf(standardizer_.apply(raw_features->value), false,
                    "std_features");
  nn::Var e2 = feature_ff_.forward(std_feats);
  // Eq. 6: concat and project to the output vector.
  return output_ff_.forward(nn::concat_last(e1, e2));
}

nn::Var Surrogate::forward(const nn::Var& sequences, const nn::Var& features) {
  return head(sequence_branch(sequences), features);
}

nn::Tensor Surrogate::encode_sequence(const nn::Tensor& sequences) const {
  nn::NoGradGuard no_grad;  // also forces dropout off (Dropout::is_active)
  nn::Var x = nn::make_leaf(sequences, false, "sequences");
  return sequence_branch(x)->value;
}

nn::Tensor Surrogate::predict_with_features(
    const nn::Tensor& e1, const nn::Tensor& raw_features) const {
  nn::NoGradGuard no_grad;
  nn::Var e1v = nn::make_leaf(e1, false, "e1");
  nn::Var fv = nn::make_leaf(raw_features, false, "features");
  return head(e1v, fv)->value;
}

std::vector<PredictionTarget> Surrogate::predict_grid_from_e1(
    std::span<const float> e1_row,
    std::span<const lambda::Config> configs) const {
  DEEPBAT_CHECK(!configs.empty(), "predict_grid_from_e1: no configs");
  DEEPBAT_CHECK(static_cast<std::int64_t>(e1_row.size()) == config_.model_dim,
                "predict_grid_from_e1: E_1 dimension mismatch");
  // Compatibility wrapper: one-shot fused pass through a throwaway fp32
  // cache (bit-identical to the composed head it used to call). Persistent
  // callers hold their own GridScoringCache.
  const GridScoringCache cache =
      make_scoring_cache(configs, ScoringPrecision::kFp32);
  std::vector<PredictionTarget> targets;
  predict_grid_from_e1_batch(e1_row, 1, cache, targets);
  return targets;
}

const char* to_string(ScoringPrecision precision) {
  switch (precision) {
    case ScoringPrecision::kFp16:
      return "fp16";
    case ScoringPrecision::kInt8:
      return "int8";
    case ScoringPrecision::kFp32:
      break;
  }
  return "fp32";
}

std::optional<ScoringPrecision> parse_scoring_precision(std::string_view name) {
  if (name == "fp32") return ScoringPrecision::kFp32;
  if (name == "fp16") return ScoringPrecision::kFp16;
  if (name == "int8") return ScoringPrecision::kInt8;
  return std::nullopt;
}

GridScoringCache Surrogate::make_scoring_cache(
    std::span<const lambda::Config> configs, ScoringPrecision precision) const {
  DEEPBAT_CHECK(!configs.empty(), "make_scoring_cache: no configs");
  GridScoringCache cache;
  cache.precision_ = precision;
  const auto n = static_cast<std::int64_t>(configs.size());
  cache.n_ = n;
  const std::int64_t f = config_.feature_dim;
  const std::int64_t d = config_.model_dim;
  const std::int64_t fe = config_.feature_embed_dim;
  const std::int64_t h = config_.ffn_hidden;
  const std::int64_t o = config_.output_dim;
  nn::NoGradGuard no_grad;

  // Plain copies (features, weight slices) go straight to stable storage:
  // the cache must outlive any caller arena scope.
  {
    nn::arena::Pause heap;
    cache.features_ = nn::Tensor({n, f});
    for (std::int64_t r = 0; r < n; ++r) {
      const auto feats = encode_features(configs[static_cast<std::size_t>(r)]);
      std::copy(feats.begin(), feats.end(), cache.features_.data() + r * f);
    }
    const nn::Tensor& w1 = output_ff_.fc1().weight()->value;  // [d + fe, h]
    DEEPBAT_CHECK(w1.dim(0) == d + fe && w1.dim(1) == h,
                  "make_scoring_cache: head fc1 shape mismatch");
    cache.w1_ = w1.clone();
    cache.w1_top_ = nn::Tensor({d, h});
    std::memcpy(cache.w1_top_.data(), w1.data(),
                static_cast<std::size_t>(d * h) * sizeof(float));
    cache.w1_bot_ = nn::Tensor({fe, h});
    std::memcpy(cache.w1_bot_.data(), w1.data() + d * h,
                static_cast<std::size_t>(fe * h) * sizeof(float));
    cache.b1_ = output_ff_.fc1().bias()->value.clone();
    cache.w2_ = output_ff_.fc2().weight()->value.clone();
    cache.b2_ = output_ff_.fc2().bias()->value.clone();
  }

  // E_2 through the same autograd ops as the composed head, so the fused
  // fp32 pass consumes bit-identical feature embeddings.
  {
    nn::arena::Scope scope;
    nn::Var std_feats =
        nn::make_leaf(standardizer_.apply(cache.features_), false,
                      "std_features");
    const nn::Var e2 = feature_ff_.forward(std_feats);
    nn::arena::Pause heap;
    cache.e2_ = e2->value.clone();
  }

  // The feature half of head fc1 (+ its bias), constant per grid: the
  // reduced-precision paths and calibration start from this instead of
  // re-multiplying E_2 every tick.
  {
    nn::arena::Pause heap;
    cache.h_feat_ = nn::Tensor({n, h});
    nn::kernels::gemm(cache.e2_.data(), cache.w1_bot_.data(),
                      cache.h_feat_.data(), n, fe, h, false, false, false);
    const float* b1 = cache.b1_.data();
    for (std::int64_t r = 0; r < n; ++r) {
      float* row = cache.h_feat_.data() + r * h;
      for (std::int64_t j = 0; j < h; ++j) row[j] += b1[j];
    }
  }

  switch (precision) {
    case ScoringPrecision::kFp16:
      cache.w2_h_ = nn::HalfMatrix::from_tensor(cache.w2_);
      break;
    case ScoringPrecision::kInt8:
      cache.w2_q_ = nn::QuantizedMatrix::from_tensor(cache.w2_);
      break;
    case ScoringPrecision::kFp32:
      break;
  }
  (void)o;
  return cache;
}

void Surrogate::calibrate_scoring_cache(GridScoringCache& cache,
                                        std::span<const float> windows,
                                        std::size_t count) const {
  DEEPBAT_CHECK(cache.n_ > 0, "calibrate_scoring_cache: empty cache");
  DEEPBAT_CHECK(count > 0, "calibrate_scoring_cache: no sample windows");
  DEEPBAT_CHECK(static_cast<std::int64_t>(windows.size()) ==
                    static_cast<std::int64_t>(count) * config_.sequence_length,
                "calibrate_scoring_cache: window buffer size mismatch");
  const std::int64_t d = config_.model_dim;
  const std::int64_t h = config_.ffn_hidden;
  const auto rows = static_cast<std::int64_t>(count);
  nn::NoGradGuard no_grad;
  nn::arena::Scope scope;
  nn::Tensor seq({rows, config_.sequence_length, 1});
  std::copy(windows.begin(), windows.end(), seq.data());
  const nn::Tensor e1 = encode_sequence(seq);
  nn::Tensor u({rows, h});
  nn::kernels::gemm(e1.data(), cache.w1_top_.data(), u.data(), rows, d, h,
                    false, false, false);
  // Post-ReLU hidden activations are non-negative, so the absmax is just
  // the largest positive pre-activation over every (window, config) pair.
  float absmax = 0.0F;
  const float* hf = cache.h_feat_.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* urow = u.data() + r * h;
    for (std::int64_t i = 0; i < cache.n_; ++i) {
      const float* frow = hf + i * h;
      for (std::int64_t j = 0; j < h; ++j) {
        absmax = std::max(absmax, frow[j] + urow[j]);
      }
    }
  }
  cache.hidden_scale_ = absmax / 127.0F;
}

void Surrogate::predict_grid_from_e1_batch(std::span<const float> e1_rows,
                                           std::size_t row_count,
                                           const GridScoringCache& cache,
                                           std::span<float> out) const {
  const auto R = static_cast<std::int64_t>(row_count);
  const std::int64_t n = cache.n_;
  const std::int64_t d = config_.model_dim;
  const std::int64_t fe = config_.feature_embed_dim;
  const std::int64_t h = config_.ffn_hidden;
  const std::int64_t o = config_.output_dim;
  DEEPBAT_CHECK(n > 0, "predict_grid_from_e1_batch: empty scoring cache");
  DEEPBAT_CHECK(static_cast<std::int64_t>(e1_rows.size()) == R * d,
                "predict_grid_from_e1_batch: E_1 buffer size mismatch");
  DEEPBAT_CHECK(static_cast<std::int64_t>(out.size()) == R * n * o,
                "predict_grid_from_e1_batch: output buffer size mismatch");
  if (R == 0) return;
  nn::NoGradGuard no_grad;
  nn::arena::Scope scope;
  const std::int64_t rows = R * n;

  nn::Tensor hidden({rows, h});
  float* hp = hidden.data();
  if (cache.precision_ == ScoringPrecision::kFp32) {
    // Exact path: materialize the concat(E_1, E_2) matrix and run the SAME
    // full-k GEMM the composed autograd head runs (matmul collapses to one
    // kernels::gemm call), so every hidden element reproduces the composed
    // path's l-sequential accumulation bit-for-bit. Splitting the product
    // into an E_1-half and an E_2-half GEMM would route the halves through
    // different micro-kernel variants and can differ in the last ulp —
    // enough to flip a borderline feasibility decision under a tightened
    // SLO. What the fused pass still saves per tick: the feature branch
    // (E_2 is cached), the per-call cache rebuild, and the per-tenant
    // dispatch — and it batches all tenants into one pass.
    nn::Tensor x({rows, d + fe});
    for (std::int64_t r = 0; r < R; ++r) {
      const float* e1_row = e1_rows.data() + r * d;
      for (std::int64_t i = 0; i < n; ++i) {
        float* xrow = x.data() + (r * n + i) * (d + fe);
        std::memcpy(xrow, e1_row, static_cast<std::size_t>(d) * sizeof(float));
        std::memcpy(xrow + d, cache.e2_.data() + i * fe,
                    static_cast<std::size_t>(fe) * sizeof(float));
      }
    }
    nn::kernels::gemm(x.data(), cache.w1_.data(), hp, rows, d + fe, h, false,
                      false, false);
    const float* b1 = cache.b1_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      float* row = hp + r * h;
      for (std::int64_t j = 0; j < h; ++j) {
        const float v = row[j] + b1[j];
        row[j] = v > 0.0F ? v : 0.0F;
      }
    }
    nn::kernels::gemm(hp, cache.w2_.data(), out.data(), rows, h, o, false,
                      false, false);
    const float* b2 = cache.b2_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      float* row = out.data() + r * o;
      for (std::int64_t j = 0; j < o; ++j) row[j] += b2[j];
    }
    return;
  }

  // Reduced precision: the feature half (E_2 @ W1_bot + b1) is constant
  // across ticks and cached, so the hidden layer is one broadcast add +
  // ReLU; only the per-config output GEMM runs quantized. The live half of
  // head fc1 — U = E_1 @ W1_top, [R, h] — stays fp32 at every precision:
  // it is O(tenants), not O(tenants * grid).
  nn::Tensor u({R, h});
  nn::kernels::gemm(e1_rows.data(), cache.w1_top_.data(), u.data(), R, d, h,
                    false, false, false);
  const float* hf = cache.h_feat_.data();
  for (std::int64_t r = 0; r < R; ++r) {
    const float* urow = u.data() + r * h;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* frow = hf + i * h;
      float* row = hp + (r * n + i) * h;
      for (std::int64_t j = 0; j < h; ++j) {
        const float v = frow[j] + urow[j];
        row[j] = v > 0.0F ? v : 0.0F;
      }
    }
  }
  const std::span<const float> hidden_span{hp,
                                           static_cast<std::size_t>(rows * h)};
  const std::span<const float> b2_span{cache.b2_.data(),
                                       static_cast<std::size_t>(o)};
  if (cache.precision_ == ScoringPrecision::kFp16) {
    nn::half_linear(hidden_span, rows, cache.w2_h_, b2_span, out);
  } else {
    nn::quantized_linear(hidden_span, rows, cache.w2_q_, b2_span, out,
                         cache.hidden_scale_);
  }
}

void Surrogate::predict_grid_from_e1_batch(
    std::span<const float> e1_rows, std::size_t row_count,
    const GridScoringCache& cache, std::vector<PredictionTarget>& out) const {
  const std::int64_t o = config_.output_dim;
  const auto total = static_cast<std::size_t>(cache.grid_size()) * row_count;
  thread_local std::vector<float> raw;
  raw.resize(total * static_cast<std::size_t>(o));
  predict_grid_from_e1_batch(e1_rows, row_count, cache, raw);
  out.resize(total);
  for (std::size_t r = 0; r < total; ++r) {
    out[r] = unpack_target(
        {raw.data() + static_cast<std::int64_t>(r) * o,
         static_cast<std::size_t>(o)});
  }
}

std::vector<PredictionTarget> Surrogate::predict_grid(
    std::span<const float> encoded_window,
    std::span<const lambda::Config> configs) const {
  DEEPBAT_CHECK(!configs.empty(), "predict_grid: no configs");
  DEEPBAT_CHECK(static_cast<std::int64_t>(encoded_window.size()) ==
                    config_.sequence_length,
                "predict_grid: window length mismatch");
  nn::NoGradGuard no_grad;
  nn::arena::Scope arena_scope;

  // Encode the sequence once, then score the whole grid off that row.
  nn::Tensor seq({1, config_.sequence_length, 1});
  std::copy(encoded_window.begin(), encoded_window.end(), seq.data());
  const nn::Tensor e1_single = encode_sequence(seq);
  return predict_grid_from_e1(
      {e1_single.data(), static_cast<std::size_t>(config_.model_dim)},
      configs);
}

std::unique_ptr<Surrogate> Surrogate::clone() const {
  // Constructing with the standard grid only seeds the feature
  // standardizer, which is overwritten right after — the clone serves
  // whatever grid its caller scores, exactly like the original.
  auto copy =
      std::make_unique<Surrogate>(config_, lambda::ConfigGrid::standard());
  copy->standardizer_ = standardizer_;
  copy->copy_parameters_from(*this);
  copy->set_training(false);
  return copy;
}

void Surrogate::copy_parameters_from(const Surrogate& other) {
  const auto dst = named_parameters();
  const auto src = other.named_parameters();
  DEEPBAT_CHECK(dst.size() == src.size(),
                "Surrogate: parameter count mismatch in copy_parameters_from");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    DEEPBAT_CHECK(dst[i].first == src[i].first,
                  "Surrogate: parameter name mismatch in copy_parameters_from");
    nn::Tensor& d = dst[i].second->value;
    const nn::Tensor& s = src[i].second->value;
    DEEPBAT_CHECK(
        d.shape() == s.shape(),
        "Surrogate: parameter shape mismatch in copy_parameters_from");
    std::copy(s.data(), s.data() + s.numel(), d.data());
  }
}

void Surrogate::set_record_attention(bool record) {
  if (config_.encoder == EncoderType::kLstm) return;  // no attention maps
  for (std::int64_t i = 0; i < encoder_.num_layers(); ++i) {
    encoder_.layer(i).self_attention().set_record_attention(record);
  }
}

std::vector<float> Surrogate::last_attention_profile() const {
  if (config_.encoder == EncoderType::kLstm) return {};
  const auto& layer0 = encoder_.layer(0).self_attention();
  const auto& attn = layer0.last_attention();
  if (!attn.has_value()) return {};
  // attn: [batch, heads, L, L]; average received attention per key position
  // over batch, heads, and query positions. The reduction runs over flat
  // contiguous rows (one pass, unit stride) instead of bounds-checked
  // element accesses.
  const nn::Tensor& a = *attn;
  const std::int64_t L = a.dim(2);
  const std::int64_t rows = a.numel() / L;  // batch * heads * L query rows
  std::vector<float> profile(static_cast<std::size_t>(L), 0.0F);
  const float* src = a.data();
  float* prof = profile.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = src + r * L;
    for (std::int64_t k = 0; k < L; ++k) prof[k] += row[k];
  }
  const float norm = static_cast<float>(rows);  // batch * heads * L
  for (float& p : profile) p /= norm;
  return profile;
}

}  // namespace deepbat::core
