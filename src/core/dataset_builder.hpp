#pragma once
// Offline training-set construction (paper §III-D "Offline Model Training"):
// random windows S of l inter-arrival times are sampled from historical
// trace data and paired with random configurations F from the grid; the
// label is the simulated cost + latency-percentile vector of serving the
// *following* traffic under F (ground-truth simulator), which is exactly
// what the deployed model must predict.

#include "core/encoding.hpp"
#include "nn/data.hpp"
#include "sim/batch_sim.hpp"
#include "workload/trace.hpp"

namespace deepbat::core {

struct DatasetBuilderOptions {
  std::int64_t sequence_length = 256;
  /// Number of arrivals the label simulation spans (the "incoming
  /// workload" horizon the prediction is about).
  std::size_t label_arrivals = 256;
  /// Number of (window, config) samples to generate.
  std::size_t samples = 2000;
  std::uint64_t seed = 1;
};

/// Simulate `config` on an arrival slice and summarize into the target
/// vector the surrogate is trained on.
PredictionTarget simulate_target(std::span<const double> arrivals,
                                 const lambda::Config& config,
                                 const lambda::LambdaModel& model);

/// Sample (S, F, O) triples from `trace`. Windows are drawn uniformly over
/// valid start positions; configs uniformly from the grid.
nn::Dataset build_dataset(const workload::Trace& trace,
                          const lambda::ConfigGrid& grid,
                          const lambda::LambdaModel& model,
                          const DatasetBuilderOptions& options);

}  // namespace deepbat::core
