#include "core/fleet_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/error.hpp"

namespace deepbat::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Aggregate rate of a merged stream. mean_rate() needs >= 2 arrivals;
/// degenerate streams plan as (near) idle.
double trace_rate(const workload::Trace& trace) { return trace.mean_rate(); }

}  // namespace

FleetOptimizer::FleetOptimizer(const lambda::CpuLambdaBackend& cpu,
                               const lambda::GpuServerlessBackend* gpu,
                               FleetOptimizerOptions options)
    : cpu_(&cpu), gpu_(gpu), options_(options) {
  DEEPBAT_CHECK(options_.safety_margin >= 0.0 && options_.safety_margin < 1.0,
                "FleetOptimizer: safety_margin out of [0, 1)");
  DEEPBAT_CHECK(options_.allow_cpu ||
                    (options_.allow_gpu && gpu_ != nullptr),
                "FleetOptimizer: no backend tier enabled");
}

double FleetOptimizer::expected_fill(double rate,
                                     const lambda::Config& config) {
  const double fill = 1.0 + std::max(rate, 0.0) * config.timeout_s;
  return std::clamp(fill, 1.0, static_cast<double>(config.batch_size));
}

FleetOptimizer::Evaluation FleetOptimizer::evaluate_backend(
    const lambda::Backend& backend, double rate, double slo_s) const {
  const double budget = slo_s * (1.0 - options_.safety_margin);
  Evaluation best;
  best.backend = backend.capabilities().kind;
  best.cost_per_request = kInf;
  best.latency_bound_s = kInf;
  // Infeasible fallback: serve as fast as possible (mirrors select_config).
  Evaluation fastest = best;
  for (const lambda::Config& cfg : backend.config_grid().enumerate()) {
    const double bound =
        cfg.timeout_s + backend.service_time(cfg, cfg.batch_size);
    const double fill = expected_fill(rate, cfg);
    const auto fill_batch = static_cast<std::int64_t>(
        std::clamp<std::int64_t>(std::llround(fill), 1, cfg.batch_size));
    const double cost =
        backend.invocation_cost(cfg, backend.service_time(cfg, fill_batch)) /
        fill;
    if (bound < fastest.latency_bound_s) {
      fastest.config = cfg;
      fastest.cost_per_request = cost;
      fastest.latency_bound_s = bound;
      fastest.expected_fill = fill;
    }
    if (bound > budget) continue;
    if (cost < best.cost_per_request) {
      best.config = cfg;
      best.cost_per_request = cost;
      best.latency_bound_s = bound;
      best.expected_fill = fill;
      best.feasible = true;
    }
  }
  return best.feasible ? best : fastest;
}

FleetOptimizer::Evaluation FleetOptimizer::evaluate(double rate,
                                                    double slo_s) const {
  const bool use_gpu = gpu_ != nullptr && options_.allow_gpu;
  if (!options_.allow_cpu) return evaluate_backend(*gpu_, rate, slo_s);
  Evaluation best = evaluate_backend(*cpu_, rate, slo_s);
  if (use_gpu) {
    const Evaluation gpu = evaluate_backend(*gpu_, rate, slo_s);
    // Feasibility first, cost second; CPU wins ties (cheaper to be wrong on
    // the commodity tier).
    const bool gpu_wins =
        (gpu.feasible && !best.feasible) ||
        (gpu.feasible == best.feasible &&
         gpu.cost_per_request < best.cost_per_request);
    if (gpu_wins) best = gpu;
  }
  return best;
}

FleetPlan FleetOptimizer::plan(std::span<const FleetTenant> fleet) const {
  FleetPlan out;
  out.group_of.assign(fleet.size(), -1);
  if (fleet.empty()) return out;
  for (const FleetTenant& t : fleet) {
    DEEPBAT_CHECK(t.trace != nullptr, "FleetOptimizer: tenant trace is null");
    DEEPBAT_CHECK(t.slo_s > 0.0, "FleetOptimizer: tenant SLO must be > 0");
  }

  // Strictest SLO first (HarmonyBatch's merge order): a group's contract is
  // its strictest member, so growing a group only ever relaxes nothing —
  // later (looser) tenants join a group whose bound they trivially meet.
  std::vector<std::size_t> order(fleet.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return fleet[a].slo_s < fleet[b].slo_s;
                   });

  struct Open {
    std::vector<std::size_t> members;
    workload::Trace merged;
    double slo_s = 0.0;
    Evaluation eval;
  };
  auto merge_with = [](const workload::Trace& a, const workload::Trace& b) {
    const workload::Trace* parts[] = {&a, &b};
    return workload::merge_traces(parts);
  };

  std::vector<Open> groups;
  Open current;
  current.members = {order[0]};
  current.merged = *fleet[order[0]].trace;
  current.slo_s = fleet[order[0]].slo_s;
  current.eval = evaluate(trace_rate(current.merged), current.slo_s);

  for (std::size_t k = 1; k < fleet.size(); ++k) {
    const std::size_t t = order[k];
    const FleetTenant& tenant = fleet[t];
    workload::Trace merged = merge_with(current.merged, *tenant.trace);
    // Sorted order: the group's contract (strictest SLO) never changes.
    const Evaluation merged_eval =
        evaluate(trace_rate(merged), current.slo_s);
    const Evaluation solo_eval =
        evaluate(trace_rate(*tenant.trace), tenant.slo_s);
    // The cap binds when closing `current` would leave no group for the
    // remaining tenants: everything left is force-merged into it.
    const bool must_merge =
        options_.max_groups > 0 && groups.size() + 1 >= options_.max_groups;
    // Keep the merge when it is predicted cheaper in $/s than provisioning
    // the parts apart (both sides feasible), i.e. the HarmonyBatch merge
    // criterion on the analytic cost model.
    const double merged_usd_s =
        merged_eval.cost_per_request * trace_rate(merged);
    const double split_usd_s =
        current.eval.cost_per_request * trace_rate(current.merged) +
        solo_eval.cost_per_request * trace_rate(*tenant.trace);
    const bool merge_wins = merged_eval.feasible && current.eval.feasible &&
                            solo_eval.feasible && merged_usd_s <= split_usd_s;
    if (must_merge || merge_wins) {
      current.members.push_back(t);
      current.merged = std::move(merged);
      current.eval = merged_eval;
    } else {
      groups.push_back(std::move(current));
      current = Open{};
      current.members = {t};
      current.merged = *tenant.trace;
      current.slo_s = tenant.slo_s;
      current.eval = solo_eval;
    }
  }
  groups.push_back(std::move(current));

  out.groups.reserve(groups.size());
  double usd_per_s = 0.0;
  double total_rate = 0.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    Open& open = groups[g];
    GroupPlan plan;
    plan.tenants = std::move(open.members);
    plan.backend = open.eval.backend;
    plan.config = open.eval.config;
    plan.slo_s = open.slo_s;
    plan.rate = trace_rate(open.merged);
    plan.expected_fill = open.eval.expected_fill;
    plan.predicted_cost_per_request = open.eval.cost_per_request;
    plan.predicted_latency_bound_s = open.eval.latency_bound_s;
    plan.feasible = open.eval.feasible;
    plan.merged_trace = std::move(open.merged);
    for (const std::size_t t : plan.tenants) {
      out.group_of[t] = static_cast<std::int64_t>(g);
    }
    usd_per_s += plan.predicted_cost_per_request * plan.rate;
    total_rate += plan.rate;
    out.groups.push_back(std::move(plan));
  }
  if (surrogate_ != nullptr) refine_with_surrogate(out);
  usd_per_s = 0.0;
  for (const GroupPlan& g : out.groups) {
    usd_per_s += g.predicted_cost_per_request * g.rate;
  }
  out.predicted_cost_per_request =
      total_rate > 0.0 ? usd_per_s / total_rate : 0.0;
  return out;
}

void FleetOptimizer::refine_with_surrogate(FleetPlan& plan) const {
  // CPU groups only: the surrogate (and its feature standardizer) is fit to
  // the CPU grid — see the header.
  std::vector<std::size_t> cpu_groups;
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    if (plan.groups[g].backend == lambda::BackendKind::kCpuLambda &&
        !plan.groups[g].merged_trace.empty()) {
      cpu_groups.push_back(g);
    }
  }
  if (cpu_groups.empty()) return;

  const std::vector<lambda::Config> configs = cpu_->config_grid().enumerate();
  const auto l =
      static_cast<std::size_t>(surrogate_->config().sequence_length);
  WindowParser parser(l, options_.pad_gap_s);

  // One batched encode + ONE fused GridScoringCache pass for every CPU
  // group (rows = groups) — the same path the multi-tenant runtime's
  // batched scorer uses, so fleet planning rides the fused kernels.
  std::vector<float> windows;
  windows.reserve(cpu_groups.size() * l);
  for (const std::size_t g : cpu_groups) {
    const workload::Trace& trace = plan.groups[g].merged_trace;
    const std::span<const float> w = parser.parse(trace, trace.end_time());
    windows.insert(windows.end(), w.begin(), w.end());
  }
  SurrogateBatchEncoder encoder(*surrogate_);
  std::vector<float> e1(cpu_groups.size() * encoder.encoding_dim());
  encoder.encode(windows, cpu_groups.size(), e1);
  SurrogateBatchScorer scorer(*surrogate_, configs,
                              options_.scoring_precision);
  std::vector<float> raw(cpu_groups.size() * scorer.grid_size() *
                         scorer.target_dim());
  scorer.score(e1, cpu_groups.size(), raw);

  for (std::size_t row = 0; row < cpu_groups.size(); ++row) {
    GroupPlan& group = plan.groups[cpu_groups[row]];
    const double budget = group.slo_s * (1.0 - options_.safety_margin);
    const float* preds =
        raw.data() + row * scorer.grid_size() * scorer.target_dim();
    // Intersect: analytically feasible AND surrogate-predicted feasible;
    // argmin on the analytic cost keeps CPU and GPU tiers comparable.
    double best_cost = kInf;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const lambda::Config& cfg = configs[i];
      const double bound =
          cfg.timeout_s + cpu_->service_time(cfg, cfg.batch_size);
      if (bound > budget) continue;
      const double predicted_slo_latency =
          static_cast<double>(preds[i * kTargetDim + 1 + kSloPercentileIndex]);
      if (!(predicted_slo_latency <= budget)) continue;
      const double fill = expected_fill(group.rate, cfg);
      const auto fill_batch = static_cast<std::int64_t>(
          std::clamp<std::int64_t>(std::llround(fill), 1, cfg.batch_size));
      const double cost =
          cpu_->invocation_cost(cfg, cpu_->service_time(cfg, fill_batch)) /
          fill;
      if (cost < best_cost) {
        best_cost = cost;
        group.config = cfg;
        group.expected_fill = fill;
        group.predicted_cost_per_request = cost;
        group.predicted_latency_bound_s = bound;
        group.feasible = true;
      }
    }
    // Empty intersection: keep the analytic choice — the surrogate vetoes
    // nothing it cannot improve on.
  }
}

std::vector<std::vector<double>> split_group_latencies(
    const GroupPlan& group, std::span<const FleetTenant> fleet,
    const sim::SimResult& result) {
  std::map<double, std::vector<double>> by_arrival;
  for (const sim::RequestRecord& rec : result.requests) {
    by_arrival[rec.arrival].push_back(rec.latency());
  }
  for (const double t : result.dropped_arrivals) {
    by_arrival[t].push_back(std::numeric_limits<double>::infinity());
  }
  std::vector<std::vector<double>> out;
  out.reserve(group.tenants.size());
  for (const std::size_t t : group.tenants) {
    const workload::Trace& trace = *fleet[t].trace;
    std::vector<double> latencies;
    latencies.reserve(trace.size());
    for (const double arrival : trace.times()) {
      auto it = by_arrival.find(arrival);
      DEEPBAT_CHECK(it != by_arrival.end() && !it->second.empty(),
                    "split_group_latencies: arrival not found in the merged "
                    "replay — was this SimResult produced from the group's "
                    "merged_trace?");
      latencies.push_back(it->second.back());
      it->second.pop_back();
    }
    out.push_back(std::move(latencies));
  }
  return out;
}

}  // namespace deepbat::core
