#pragma once
// Calibrated AWS-Lambda performance and cost model — the substitute for the
// paper's profiled TED-LIUM inference measurements (see DESIGN.md §2).
//
// Performance. The paper (and BATCH before it) established that inference
// service times are deterministic given memory size M and batch size B. We
// model the deterministic service time as
//
//   s(M, B) = t_fixed + work(B) / speedup(M)
//   work(B) = c_invoke + c_request * B^gamma          (gamma < 1: batching
//                                                      parallelism)
//   speedup(M) = 1 / ((1 - p) + p / vcpus(M))         (Amdahl; vcpus(M) =
//                                                      M / 1769 MB as on
//                                                      AWS Lambda)
//
// which reproduces Fig. 1's qualitative shapes: latency falls then
// plateaus in M; grows sublinearly in B.
//
// Cost. Published AWS Lambda pricing: a fixed fee per invocation plus
// GB-seconds of billed duration (rounded up to 1 ms).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace deepbat::lambda {

/// Range limits a Config must respect. Defaults are the CPU-Lambda
/// platform limits (Eq. 10); heterogeneous backends substitute their own
/// capability ranges (lambda::Backend::validate, DESIGN.md §13) — on the
/// GPU tier the capacity knob is an SM percentage in [10, 100], not MB.
struct ConfigBounds {
  std::int64_t min_capacity = 128;    // Config::memory_mb lower bound
  std::int64_t max_capacity = 10240;  // Config::memory_mb upper bound
  std::int64_t max_batch_size = 1024;
  double max_timeout_s = 900.0;  // AWS Lambda's function timeout ceiling
};

/// A serverless batching configuration — the decision variables of Eq. 10.
struct Config {
  std::int64_t memory_mb = 1024;  // M, constraint 128 <= M <= 10240
  std::int64_t batch_size = 1;    // B >= 1
  double timeout_s = 0.1;         // T >= 0

  bool operator==(const Config&) const = default;
  std::string to_string() const;

  /// Bounds check without throwing: nullopt when the config is in range,
  /// otherwise an Error naming the violated bound. Out-of-range values
  /// used to pass silently into the models until a downstream
  /// DEEPBAT_CHECK (or nothing) caught them; parse boundaries —
  /// sim::Runtime::add_tenant, bench/example CLIs — call this instead so
  /// bad inputs fail at the edge with a bound-specific message.
  std::optional<Error> validate(const ConfigBounds& bounds = {}) const;
};

struct LambdaModelParams {
  // --- performance ---
  // Calibrated to an NLP inference kernel (TED-LIUM-sized chunks) so that
  // the 0.1 s SLO sits right at the interesting feasibility boundary, as in
  // the paper's testbed: at the largest memory a single request takes
  // ~32 ms and a batch of 8 ~105 ms, so batching headroom depends on the
  // arrival pattern — the regime where BATCH's staleness causes the
  // violations of Figs. 7-12.
  double t_fixed_s = 0.010;      // per-invocation runtime overhead
  double c_invoke_s = 0.030;     // model setup cost per invocation (1 vCPU)
  double c_request_s = 0.060;    // marginal work per request (1 vCPU)
  double batch_exponent = 0.85;  // gamma: sub-linear batch scaling
  double parallel_fraction = 0.85;  // p in Amdahl's law
  double mb_per_vcpu = 1769.0;   // AWS: full vCPU at 1769 MB
  // Below the model's working-set size the runtime pays paging/GC overhead
  // — this is Fig. 1a's "underestimating the application memory
  // requirements leads to longer latencies", and it creates the cost sweet
  // spot in M.
  double model_footprint_mb = 512.0;
  double memory_pressure_penalty = 2.0;
  // --- cold starts (optional; 0 disables, matching BATCH's assumptions) ---
  double cold_start_probability = 0.0;
  double cold_start_penalty_s = 0.8;
  // --- pricing (AWS Lambda x86, us-east-1) ---
  double usd_per_gb_second = 1.66667e-5;
  double usd_per_invocation = 2.0e-7;
  double billing_quantum_s = 0.001;  // duration rounded up to 1 ms
  // --- platform limits (Eq. 10e) ---
  std::int64_t min_memory_mb = 128;
  std::int64_t max_memory_mb = 10240;
};

class LambdaModel {
 public:
  explicit LambdaModel(LambdaModelParams params = {});

  const LambdaModelParams& params() const { return params_; }

  /// Fractional vCPUs allotted at memory M.
  double vcpus(std::int64_t memory_mb) const;

  /// Amdahl speedup relative to one full vCPU.
  double speedup(std::int64_t memory_mb) const;

  /// Deterministic service time of a batch of `batch_size` requests at
  /// memory M (no cold start).
  double service_time(std::int64_t memory_mb, std::int64_t batch_size) const;

  /// Monetary cost of one invocation running for `duration_s` at memory M.
  double invocation_cost(std::int64_t memory_mb, double duration_s) const;

  /// Cost per request when a batch of `batch_size` is served at memory M.
  double cost_per_request(std::int64_t memory_mb,
                          std::int64_t batch_size) const;

  /// Throws deepbat::Error if the config violates the Eq. 10 constraints.
  void validate(const Config& config) const;

 private:
  LambdaModelParams params_;
};

/// The discrete search space both optimizers scan (memory ladder follows
/// Lambda's configurable sizes; batch sizes and timeouts follow BATCH's
/// experiment grid).
struct ConfigGrid {
  std::vector<std::int64_t> memories_mb;
  std::vector<std::int64_t> batch_sizes;
  std::vector<double> timeouts_s;

  /// Default grid used throughout the evaluation (11 x 7 x 8 = 616 points).
  static ConfigGrid standard();

  /// Reduced grid for unit tests and quick examples.
  static ConfigGrid small();

  /// Materialize the cross product.
  std::vector<Config> enumerate() const;

  std::size_t size() const {
    return memories_mb.size() * batch_sizes.size() * timeouts_s.size();
  }
};

}  // namespace deepbat::lambda
