#pragma once
// Heterogeneous serverless backend abstraction (DESIGN.md §13).
//
// DeepBAT's original cost/latency model is a calibrated CPU-Lambda
// (lambda::LambdaModel). HarmonyBatch (arXiv:2405.05633) shows that the
// real fleet-level cost win comes from provisioning tenant *groups* onto
// heterogeneous function pools — CPU functions for light/loose traffic,
// GPU functions for aggregated tight-SLO traffic — so every layer that
// used to assume one cost model now talks to this interface instead:
//
//   * CpuLambdaBackend    — a bit-identical wrapper over LambdaModel.
//                           Pre-existing replays stay byte-stable
//                           (tests/lambda/test_backend.cpp pins bitwise
//                           parity across the full config grid).
//   * GpuServerlessBackend— a GPU function tier calibrated to the shapes
//                           HAS-GPU (arXiv:2505.01968) reports: a much
//                           higher fixed cost per second, strongly
//                           SUB-linear batch scaling (gamma_gpu <<
//                           gamma_cpu), fractional SM allocation as the
//                           capacity knob, and a far larger cold start.
//
// The decision variables stay lambda::Config, but the capacity knob
// `memory_mb` is interpreted per backend: a memory size (vCPU share) on
// CPU-Lambda, an SM percentage in [10, 100] on the GPU tier. Each backend
// therefore publishes its own ConfigGrid — optimizers must never score one
// backend's grid against another's model.

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "lambda/model.hpp"

namespace deepbat::lambda {

enum class BackendKind { kCpuLambda, kGpuServerless };

const char* to_string(BackendKind kind);
/// Parse "cpu" / "gpu" (also accepts the full names above).
std::optional<BackendKind> parse_backend_kind(std::string_view name);

/// Static capability descriptor: what the capacity knob means on this
/// backend and the ranges a Config must respect (Eq. 10e generalized).
struct BackendCapabilities {
  BackendKind kind = BackendKind::kCpuLambda;
  std::string name;           // "cpu-lambda" | "gpu-serverless"
  std::string capacity_unit;  // "MB" | "SM%"
  std::int64_t min_capacity = 128;    // Config::memory_mb lower bound
  std::int64_t max_capacity = 10240;  // Config::memory_mb upper bound
  std::int64_t max_batch_size = 64;
  double max_timeout_s = 900.0;
  /// Typical cold-start penalty at a mid-grid config (planning hint; the
  /// authoritative per-config value is Backend::cold_start()).
  double typical_cold_start_s = 0.0;
};

/// The pluggable cost/latency model every layer above lambda/ talks to.
/// Implementations must be deterministic pure functions of (config, batch)
/// so that replays stay bit-reproducible and shard-invariant.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const BackendCapabilities& capabilities() const = 0;

  /// Deterministic service time (seconds) of a batch of `batch_size`
  /// requests under `config` (no cold start).
  virtual double service_time(const Config& config,
                              std::int64_t batch_size) const = 0;

  /// Monetary cost (USD) of one invocation running `duration_s` under
  /// `config`.
  virtual double invocation_cost(const Config& config,
                                 double duration_s) const = 0;

  /// Cold-start penalty (seconds) added to an affected invocation.
  virtual double cold_start(const Config& config) const = 0;

  /// Probability an invocation pays cold_start() (the simulator's draw).
  virtual double cold_start_probability() const = 0;

  /// The discrete (M, B, T) search space of this backend. M is in this
  /// backend's capacity unit (see capabilities()).
  virtual ConfigGrid config_grid() const = 0;

  /// Steady-state cost per request when full batches of `batch_size` are
  /// served under `config`.
  double cost_per_request(const Config& config, std::int64_t batch_size) const;

  /// Range-check `config` against this backend's capabilities; throws
  /// deepbat::Error on violation. CpuLambdaBackend overrides this to defer
  /// to LambdaModel::validate so messages (and replays that depend on the
  /// throw) stay byte-identical to the legacy path.
  virtual void validate(const Config& config) const;
};

/// Bit-identical Backend view of the legacy LambdaModel: every virtual
/// delegates to the exact LambdaModel member the pre-backend simulator
/// called, so a replay through this wrapper is byte-stable with one through
/// the model directly (golden parity test in tests/lambda/test_backend.cpp).
class CpuLambdaBackend final : public Backend {
 public:
  /// Borrows `model`; the caller keeps it alive.
  explicit CpuLambdaBackend(const LambdaModel& model);

  const LambdaModel& model() const { return *model_; }

  const BackendCapabilities& capabilities() const override {
    return capabilities_;
  }
  double service_time(const Config& config,
                      std::int64_t batch_size) const override;
  double invocation_cost(const Config& config,
                         double duration_s) const override;
  double cold_start(const Config& config) const override;
  double cold_start_probability() const override;
  ConfigGrid config_grid() const override;
  void validate(const Config& config) const override;

 private:
  const LambdaModel* model_;
  BackendCapabilities capabilities_;
};

/// GPU serverless function tier, calibrated to the qualitative shapes of
/// HAS-GPU (arXiv:2505.01968):
///
///   * capacity = SM fraction. Config::memory_mb holds the SM percentage
///     (10..100); fine-grained fractional GPU allocation is the paper's
///     core knob.
///   * service_time(f, B) = t_fixed + (c_invoke + c_request * B^gamma_gpu)
///     / amdahl(f) with gamma_gpu = 0.30 — batches ride the GPU's data
///     parallelism, so doubling B barely moves the kernel time (HAS-GPU
///     Fig. 5: near-flat latency-vs-batch until SM saturation).
///   * cost: a GPU-second costs ~40x a CPU GB-second and is billed
///     proportional to the SM fraction held, plus a 10x per-invocation fee
///     — the "high fixed cost" end of the HarmonyBatch trade-off.
///   * cold starts load model + runtime onto the device: seconds, not
///     hundreds of milliseconds.
struct GpuBackendParams {
  // --- performance (full-GPU reference, SM fraction f = 1.0) ---
  double t_fixed_s = 0.004;         // dispatch + runtime overhead
  double c_invoke_s = 0.008;        // kernel launch / weight touch
  double c_request_s = 0.0045;      // marginal per-request work
  double batch_exponent = 0.30;     // gamma_gpu << gamma_cpu (0.85)
  double parallel_fraction = 0.92;  // Amdahl across the SM slice
  // --- pricing ---
  double usd_per_gpu_second = 6.5e-4;  // full-GPU rate; billed * f
  double usd_per_invocation = 2.0e-6;  // 10x the Lambda fee
  double billing_quantum_s = 0.001;
  // --- cold starts ---
  double cold_start_probability = 0.0;
  double cold_start_penalty_s = 5.0;
  // --- capacity limits ---
  std::int64_t min_sm_pct = 10;
  std::int64_t max_sm_pct = 100;
  std::int64_t max_batch_size = 128;
};

class GpuServerlessBackend final : public Backend {
 public:
  explicit GpuServerlessBackend(GpuBackendParams params = {});

  const GpuBackendParams& params() const { return params_; }

  /// SM fraction in (0, 1] encoded by a config's capacity knob.
  double sm_fraction(std::int64_t sm_pct) const;
  /// Amdahl speedup relative to the full GPU.
  double speedup(std::int64_t sm_pct) const;

  const BackendCapabilities& capabilities() const override {
    return capabilities_;
  }
  double service_time(const Config& config,
                      std::int64_t batch_size) const override;
  double invocation_cost(const Config& config,
                         double duration_s) const override;
  double cold_start(const Config& config) const override;
  double cold_start_probability() const override;
  ConfigGrid config_grid() const override;

 private:
  GpuBackendParams params_;
  BackendCapabilities capabilities_;
};

/// Factory for CLI-style construction (`--backend cpu|gpu`). The CPU
/// backend borrows `cpu_model`; the GPU backend uses default calibration.
std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const LambdaModel& cpu_model);

}  // namespace deepbat::lambda
