#include "lambda/model.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace deepbat::lambda {

std::string Config::to_string() const {
  std::ostringstream os;
  os << "{M=" << memory_mb << "MB, B=" << batch_size << ", T=" << timeout_s
     << "s}";
  return os.str();
}

std::optional<Error> Config::validate(const ConfigBounds& bounds) const {
  if (memory_mb < bounds.min_capacity || memory_mb > bounds.max_capacity) {
    return Error("config: capacity out of range [" +
                 std::to_string(bounds.min_capacity) + ", " +
                 std::to_string(bounds.max_capacity) +
                 "]: " + to_string());
  }
  if (batch_size < 1 || batch_size > bounds.max_batch_size) {
    return Error("config: batch size out of range [1, " +
                 std::to_string(bounds.max_batch_size) + "]: " + to_string());
  }
  if (!(timeout_s >= 0.0) || timeout_s > bounds.max_timeout_s) {
    std::ostringstream os;
    os << "config: timeout out of range [0, " << bounds.max_timeout_s
       << "]: " << to_string();
    return Error(os.str());
  }
  return std::nullopt;
}

LambdaModel::LambdaModel(LambdaModelParams params) : params_(params) {
  DEEPBAT_CHECK(params_.mb_per_vcpu > 0.0, "LambdaModel: bad mb_per_vcpu");
  DEEPBAT_CHECK(
      params_.parallel_fraction >= 0.0 && params_.parallel_fraction < 1.0,
      "LambdaModel: parallel_fraction must be in [0, 1)");
  DEEPBAT_CHECK(params_.batch_exponent > 0.0 && params_.batch_exponent <= 1.0,
                "LambdaModel: batch_exponent must be in (0, 1]");
  DEEPBAT_CHECK(params_.cold_start_probability >= 0.0 &&
                    params_.cold_start_probability <= 1.0,
                "LambdaModel: cold_start_probability must be in [0, 1]");
}

double LambdaModel::vcpus(std::int64_t memory_mb) const {
  return static_cast<double>(memory_mb) / params_.mb_per_vcpu;
}

double LambdaModel::speedup(std::int64_t memory_mb) const {
  const double p = params_.parallel_fraction;
  return 1.0 / ((1.0 - p) + p / vcpus(memory_mb));
}

double LambdaModel::service_time(std::int64_t memory_mb,
                                 std::int64_t batch_size) const {
  DEEPBAT_CHECK(batch_size >= 1, "service_time: batch size must be >= 1");
  const double work =
      params_.c_invoke_s +
      params_.c_request_s *
          std::pow(static_cast<double>(batch_size), params_.batch_exponent);
  double service = params_.t_fixed_s + work / speedup(memory_mb);
  const double m = static_cast<double>(memory_mb);
  if (m < params_.model_footprint_mb) {
    service *= 1.0 + params_.memory_pressure_penalty *
                         (params_.model_footprint_mb / m - 1.0);
  }
  return service;
}

double LambdaModel::invocation_cost(std::int64_t memory_mb,
                                    double duration_s) const {
  DEEPBAT_CHECK(duration_s >= 0.0, "invocation_cost: negative duration");
  const double billed =
      std::ceil(duration_s / params_.billing_quantum_s) *
      params_.billing_quantum_s;
  const double gb = static_cast<double>(memory_mb) / 1024.0;
  return params_.usd_per_invocation + billed * gb * params_.usd_per_gb_second;
}

double LambdaModel::cost_per_request(std::int64_t memory_mb,
                                     std::int64_t batch_size) const {
  return invocation_cost(memory_mb, service_time(memory_mb, batch_size)) /
         static_cast<double>(batch_size);
}

void LambdaModel::validate(const Config& config) const {
  DEEPBAT_CHECK(config.batch_size >= 1,
                "config: B >= 1 required (Eq. 10c): " + config.to_string());
  DEEPBAT_CHECK(config.timeout_s >= 0.0,
                "config: T >= 0 required (Eq. 10d): " + config.to_string());
  DEEPBAT_CHECK(config.memory_mb >= params_.min_memory_mb &&
                    config.memory_mb <= params_.max_memory_mb,
                "config: memory out of range (Eq. 10e): " + config.to_string());
}

ConfigGrid ConfigGrid::standard() {
  ConfigGrid grid;
  grid.memories_mb = {128,  256,  512,  1024, 1536, 2048,
                      3072, 4096, 6144, 8192, 10240};
  grid.batch_sizes = {1, 2, 4, 8, 16, 32, 64};
  grid.timeouts_s = {0.0, 0.01, 0.025, 0.05, 0.1, 0.2, 0.5, 1.0};
  return grid;
}

ConfigGrid ConfigGrid::small() {
  ConfigGrid grid;
  grid.memories_mb = {512, 2048, 8192};
  grid.batch_sizes = {1, 4, 16};
  grid.timeouts_s = {0.01, 0.05, 0.2};
  return grid;
}

std::vector<Config> ConfigGrid::enumerate() const {
  std::vector<Config> configs;
  configs.reserve(size());
  for (const auto m : memories_mb) {
    for (const auto b : batch_sizes) {
      for (const double t : timeouts_s) {
        configs.push_back(Config{m, b, t});
      }
    }
  }
  return configs;
}

}  // namespace deepbat::lambda
