#include "lambda/backend.hpp"

#include <cmath>

namespace deepbat::lambda {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kCpuLambda:
      return "cpu-lambda";
    case BackendKind::kGpuServerless:
      return "gpu-serverless";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) {
  if (name == "cpu" || name == "cpu-lambda") return BackendKind::kCpuLambda;
  if (name == "gpu" || name == "gpu-serverless") {
    return BackendKind::kGpuServerless;
  }
  return std::nullopt;
}

double Backend::cost_per_request(const Config& config,
                                 std::int64_t batch_size) const {
  return invocation_cost(config, service_time(config, batch_size)) /
         static_cast<double>(batch_size);
}

void Backend::validate(const Config& config) const {
  const BackendCapabilities& caps = capabilities();
  ConfigBounds bounds;
  bounds.min_capacity = caps.min_capacity;
  bounds.max_capacity = caps.max_capacity;
  bounds.max_batch_size = caps.max_batch_size;
  bounds.max_timeout_s = caps.max_timeout_s;
  if (auto err = config.validate(bounds)) {
    throw Error(caps.name + ": " + err->what());
  }
}

// ------------------------------------------------------ CpuLambdaBackend --

CpuLambdaBackend::CpuLambdaBackend(const LambdaModel& model) : model_(&model) {
  capabilities_.kind = BackendKind::kCpuLambda;
  capabilities_.name = "cpu-lambda";
  capabilities_.capacity_unit = "MB";
  capabilities_.min_capacity = model.params().min_memory_mb;
  capabilities_.max_capacity = model.params().max_memory_mb;
  capabilities_.max_batch_size = 1024;
  capabilities_.max_timeout_s = 900.0;
  capabilities_.typical_cold_start_s = model.params().cold_start_penalty_s;
}

double CpuLambdaBackend::service_time(const Config& config,
                                      std::int64_t batch_size) const {
  return model_->service_time(config.memory_mb, batch_size);
}

double CpuLambdaBackend::invocation_cost(const Config& config,
                                         double duration_s) const {
  return model_->invocation_cost(config.memory_mb, duration_s);
}

double CpuLambdaBackend::cold_start(const Config&) const {
  return model_->params().cold_start_penalty_s;
}

double CpuLambdaBackend::cold_start_probability() const {
  return model_->params().cold_start_probability;
}

ConfigGrid CpuLambdaBackend::config_grid() const {
  return ConfigGrid::standard();
}

void CpuLambdaBackend::validate(const Config& config) const {
  // Defer to LambdaModel::validate verbatim: identical checks, identical
  // messages — the legacy simulator path is byte-stable through here.
  model_->validate(config);
}

// -------------------------------------------------- GpuServerlessBackend --

GpuServerlessBackend::GpuServerlessBackend(GpuBackendParams params)
    : params_(params) {
  DEEPBAT_CHECK(params_.min_sm_pct >= 1 &&
                    params_.min_sm_pct <= params_.max_sm_pct &&
                    params_.max_sm_pct <= 100,
                "GpuServerlessBackend: bad SM percentage range");
  DEEPBAT_CHECK(
      params_.parallel_fraction >= 0.0 && params_.parallel_fraction < 1.0,
      "GpuServerlessBackend: parallel_fraction must be in [0, 1)");
  DEEPBAT_CHECK(params_.batch_exponent > 0.0 && params_.batch_exponent <= 1.0,
                "GpuServerlessBackend: batch_exponent must be in (0, 1]");
  DEEPBAT_CHECK(params_.cold_start_probability >= 0.0 &&
                    params_.cold_start_probability <= 1.0,
                "GpuServerlessBackend: cold_start_probability in [0, 1]");
  capabilities_.kind = BackendKind::kGpuServerless;
  capabilities_.name = "gpu-serverless";
  capabilities_.capacity_unit = "SM%";
  capabilities_.min_capacity = params_.min_sm_pct;
  capabilities_.max_capacity = params_.max_sm_pct;
  capabilities_.max_batch_size = params_.max_batch_size;
  capabilities_.max_timeout_s = 900.0;
  capabilities_.typical_cold_start_s = params_.cold_start_penalty_s;
}

double GpuServerlessBackend::sm_fraction(std::int64_t sm_pct) const {
  return static_cast<double>(sm_pct) / 100.0;
}

double GpuServerlessBackend::speedup(std::int64_t sm_pct) const {
  const double p = params_.parallel_fraction;
  return 1.0 / ((1.0 - p) + p / sm_fraction(sm_pct));
}

double GpuServerlessBackend::service_time(const Config& config,
                                          std::int64_t batch_size) const {
  DEEPBAT_CHECK(batch_size >= 1, "service_time: batch size must be >= 1");
  const double work =
      params_.c_invoke_s +
      params_.c_request_s *
          std::pow(static_cast<double>(batch_size), params_.batch_exponent);
  return params_.t_fixed_s + work / speedup(config.memory_mb);
}

double GpuServerlessBackend::invocation_cost(const Config& config,
                                             double duration_s) const {
  DEEPBAT_CHECK(duration_s >= 0.0, "invocation_cost: negative duration");
  const double billed = std::ceil(duration_s / params_.billing_quantum_s) *
                        params_.billing_quantum_s;
  return params_.usd_per_invocation +
         billed * sm_fraction(config.memory_mb) * params_.usd_per_gpu_second;
}

double GpuServerlessBackend::cold_start(const Config&) const {
  return params_.cold_start_penalty_s;
}

double GpuServerlessBackend::cold_start_probability() const {
  return params_.cold_start_probability;
}

ConfigGrid GpuServerlessBackend::config_grid() const {
  ConfigGrid grid;
  // SM percentages (fractional GPU allocation), batch sizes up to the
  // GPU's deep batching headroom, and the same timeout ladder as the CPU
  // tier so timeout decisions compare like for like.
  for (std::int64_t pct = params_.min_sm_pct; pct <= params_.max_sm_pct;
       pct += 10) {
    grid.memories_mb.push_back(pct);
  }
  for (std::int64_t b = 1; b <= params_.max_batch_size; b *= 2) {
    grid.batch_sizes.push_back(b);
  }
  grid.timeouts_s = ConfigGrid::standard().timeouts_s;
  return grid;
}

// ------------------------------------------------------------- factory ----

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const LambdaModel& cpu_model) {
  switch (kind) {
    case BackendKind::kCpuLambda:
      return std::make_unique<CpuLambdaBackend>(cpu_model);
    case BackendKind::kGpuServerless:
      return std::make_unique<GpuServerlessBackend>();
  }
  DEEPBAT_FAIL("make_backend: unknown backend kind");
}

}  // namespace deepbat::lambda
