#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the kernel and obs layers.
#
#   scripts/check.sh          # build + full ctest, then ASan + TSan stages
#   scripts/check.sh --fast   # skip the sanitizer rebuilds
#
# The ASan stage rebuilds into build-asan/ with DEEPBAT_SANITIZE=address and
# runs the nn/kernel/arena test binaries plus the obs registry, the
# fault-injection simulator (test_sim), and the sharded runtime tests (whose
# faulted shard-invariance cases cover the retry/drop paths); the TSan stage
# rebuilds into build-tsan/ and runs the obs
# tests (concurrent increments against the lock-free metric shards) plus
# test_runtime and test_common, whose WorkerPool / concurrent-shard stress
# cases are where a race in the sharded executor would surface. The TSan
# runtime stage pins OMP_NUM_THREADS=1: libgomp's barriers are opaque to
# TSan and report false positives; the WorkerPool threads (the PR 4
# concurrency under test) are plain std::threads TSan understands. The
# slow integration suite stays in the plain tier-1 run. A final run of
# bench/nn_kernels gates the kernel speedups against the committed
# bench/BASELINE_kernels.json.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== fleet smoke =="
# Heterogeneous fleet gate (DESIGN.md §13): grouped multi-SLO provisioning
# must beat per-tenant CPU DeepBAT on cost at no-worse attainment, stay
# bit-identical across {1,2,5} shards and reruns, and the CPU backend
# wrapper must replay bit-identically to the legacy model path.
./build/bench/fleet --hours 0.25 --fleet 8 --groups 2 --shards 2

echo "== retrain chaos smoke =="
# Online-learning gate (DESIGN.md §14): under flaky faults with --retrain
# the adaptive controller must drift-trip, retrain, shadow-win, and
# hot-swap — and the post-swap fallback rate must DROP — while the replay
# stays bit-identical solo vs sharded and across reruns (exit 1 otherwise).
./build/bench/chaos_replay --hours 0.25 --faults flaky --retrain --shards 2

echo "== crash recovery smoke =="
# Durability gate (DESIGN.md §16): replay a flaky+retraining run, kill the
# process at a seeded mid-run tick, restore from the checkpoint, and require
# the stitched result to be bit-identical to the uninterrupted reference at
# {1,2,5} shards; truncated / bit-flipped / version-skewed snapshots must be
# rejected with typed errors (exit 1 on any violation).
./build/bench/crash_recovery --hours 0.25 --faults flaky

echo "== runtime scale smoke =="
# Million-tenant runtime gate (DESIGN.md §15) at smoke size: a 10k-tenant
# Zipf population through the calendar-queue scheduler and work-stealing
# shards. Exits 1 if per-tick scheduler cost grows with the fleet (the
# pre-calendar O(tenants) scan) or if any 2-shard stolen run diverges from
# the 1-shard replay.
./build/bench/runtime_scale --max-tenants 10000 --out /tmp/deepbat_scale.json

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== asan: build =="
cmake -B build-asan -S . -DDEEPBAT_SANITIZE=address -DDEEPBAT_NATIVE=OFF \
  >/dev/null
cmake --build build-asan -j"$(nproc)" --target \
  test_nn_kernels test_nn_tensor test_nn_autograd test_nn_modules test_obs \
  test_common test_sim test_runtime test_lambda test_fleet test_learn

echo "== asan: run =="
for t in test_nn_kernels test_nn_tensor test_nn_autograd test_nn_modules \
         test_obs test_common test_sim test_runtime test_lambda test_fleet \
         test_learn; do
  ./build-asan/tests/"$t"
done

echo "== ubsan: build =="
# UBSan over the corruption paths (DESIGN.md §16): the checkpoint and weight
# loaders chew on truncated / bit-flipped / hand-crafted-overflow inputs in
# test_sim, test_runtime, and the serialize fuzz tests — every rejection
# must be a typed error with zero UB behind it (-fno-sanitize-recover=all
# turns any finding into a hard failure).
cmake -B build-ubsan -S . -DDEEPBAT_SANITIZE=undefined -DDEEPBAT_NATIVE=OFF \
  >/dev/null
cmake --build build-ubsan -j"$(nproc)" --target \
  test_sim test_runtime test_nn_training

echo "== ubsan: run =="
./build-ubsan/tests/test_sim
./build-ubsan/tests/test_runtime
./build-ubsan/tests/test_nn_training

echo "== tsan: build =="
cmake -B build-tsan -S . -DDEEPBAT_SANITIZE=thread -DDEEPBAT_NATIVE=OFF \
  >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_obs test_common \
  test_runtime test_nn_kernels test_fleet test_learn

echo "== tsan: run =="
./build-tsan/tests/test_obs
OMP_NUM_THREADS=1 ./build-tsan/tests/test_common
# test_runtime carries the work-stealing surface: the steal-stress case
# (6 shards, short quanta, claims changing hands) plus the stealing
# on/off shard-invariance and faulted-replay matrices.
OMP_NUM_THREADS=1 ./build-tsan/tests/test_runtime
# Fleet tests drive mixed CPU/GPU tenants through the sharded runtime —
# the heterogeneous-backend dispatch path under TSan.
OMP_NUM_THREADS=1 ./build-tsan/tests/test_fleet
# Online-learning loop (DESIGN.md §14): the versioned-store swap-while-
# scoring stress and the background-pool retrainer are the new concurrency
# surfaces; the adaptive E2E tests ride along.
OMP_NUM_THREADS=1 ./build-tsan/tests/test_learn
# Covers the golden quant-GEMM tests (gemm_s8 / quantize_rows_s8 / gemm_f16w)
# under TSan's runtime. Filtered: the bit-identity suites set OMP thread
# counts internally, and libgomp's barriers are opaque to TSan (same false
# positives as above — OMP_NUM_THREADS=1 cannot pin an explicit
# omp_set_num_threads).
OMP_NUM_THREADS=1 ./build-tsan/tests/test_nn_kernels \
  --gtest_filter='Kernels.GemmS8*:Kernels.QuantizeRows*:Kernels.GemmF16w*:Kernels.Fp16*'

echo "== kernel bench gate =="
# Kernel bench against the committed speedup baseline: named tall-skinny
# shapes must beat the seed kernels, 2 threads must not lose to 1, and
# same-run speedup ratios must stay within 10% of the baseline. Full mode
# (~35 s), not --quick: the short samples are too noisy for a 10% gate.
./build/bench/nn_kernels --json=/tmp/deepbat_gate_kernels.json \
  --gate=bench/BASELINE_kernels.json

echo "== all checks passed =="
