#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass over the kernel layer.
#
#   scripts/check.sh          # plain build + full ctest, then ASan kernel tests
#   scripts/check.sh --fast   # skip the ASan rebuild
#
# The ASan stage rebuilds into build-asan/ with DEEPBAT_SANITIZE=address and
# runs the nn/kernel/arena test binaries (the code this layer touches most);
# the slow integration suite stays in the plain tier-1 run.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "$FAST" == "1" ]]; then
  echo "== skipping ASan pass (--fast) =="
  exit 0
fi

echo "== asan: build =="
cmake -B build-asan -S . -DDEEPBAT_SANITIZE=address -DDEEPBAT_NATIVE=OFF \
  >/dev/null
cmake --build build-asan -j"$(nproc)" --target \
  test_nn_kernels test_nn_tensor test_nn_autograd test_nn_modules

echo "== asan: run =="
for t in test_nn_kernels test_nn_tensor test_nn_autograd test_nn_modules; do
  ./build-asan/tests/"$t"
done

echo "== all checks passed =="
